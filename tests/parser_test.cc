#include "datalog/parser.h"

#include <gtest/gtest.h>

namespace stratlearn {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  SymbolTable symbols_;
  Parser parser_{&symbols_};
};

TEST_F(ParserTest, ParsesFact) {
  Result<Program> p = parser_.ParseProgram("prof(russ).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->facts.size(), 1u);
  EXPECT_TRUE(p->rules.empty());
  EXPECT_EQ(p->facts[0].head.ToString(symbols_), "prof(russ)");
}

TEST_F(ParserTest, ParsesRule) {
  Result<Program> p = parser_.ParseProgram("instructor(X) :- prof(X).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->rules.size(), 1u);
  EXPECT_EQ(p->rules[0].ToString(symbols_), "instructor(X) :- prof(X).");
  EXPECT_TRUE(p->rules[0].body[0].args[0].is_variable());
}

TEST_F(ParserTest, ParsesConjunctiveBody) {
  Result<Program> p =
      parser_.ParseProgram("path(X, Y) :- edge(X, Z), path(Z, Y).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->rules.size(), 1u);
  EXPECT_EQ(p->rules[0].body.size(), 2u);
}

TEST_F(ParserTest, FigureOneProgram) {
  const char* kProgram = R"(
    % Figure 1's knowledge base.
    instructor(X) :- prof(X).
    instructor(X) :- grad(X).
    grad(manolis).   # DB_1
  )";
  Result<Program> p = parser_.ParseProgram(kProgram);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->rules.size(), 2u);
  EXPECT_EQ(p->facts.size(), 1u);
}

TEST_F(ParserTest, CommentsAndWhitespace) {
  Result<Program> p = parser_.ParseProgram(
      "% whole-line comment\n  p(a).  # trailing comment\n\n\n q(b).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->facts.size(), 2u);
}

TEST_F(ParserTest, QuotedAndNumericConstants) {
  Result<Program> p = parser_.ParseProgram("age('Russ Greiner', 40).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->facts[0].head.ToString(symbols_), "age(Russ Greiner, 40)");
  EXPECT_TRUE(p->facts[0].head.IsGround());
}

TEST_F(ParserTest, UnderscoreIsVariable) {
  Result<Program> p = parser_.ParseProgram("p(X) :- q(X, _anything).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(p->rules[0].body[0].args[1].is_variable());
}

TEST_F(ParserTest, PropositionalAtoms) {
  Result<Program> p = parser_.ParseProgram("raining. wet :- raining.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->facts.size(), 1u);
  EXPECT_EQ(p->rules.size(), 1u);
  EXPECT_EQ(p->rules[0].head.arity(), 0u);
}

TEST_F(ParserTest, MissingPeriodFails) {
  Result<Program> p = parser_.ParseProgram("p(a)");
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ParserTest, NonGroundFactParsesButLoadFails) {
  // Parsing keeps non-ground facts so the static verifier can point at
  // them (V-R002); loading into a database still rejects them.
  Result<Program> p = parser_.ParseProgram("p(X).");
  ASSERT_TRUE(p.ok());
  Database db;
  RuleBase rules;
  Status s = parser_.LoadProgram("p(X).", &db, &rules);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not ground"), std::string::npos);
}

TEST_F(ParserTest, UppercasePredicateFails) {
  Result<Program> p = parser_.ParseProgram("Prof(russ).");
  EXPECT_FALSE(p.ok());
}

TEST_F(ParserTest, UnterminatedQuoteFails) {
  Result<Program> p = parser_.ParseProgram("p('oops).");
  EXPECT_FALSE(p.ok());
}

TEST_F(ParserTest, ErrorReportsLineNumber) {
  Result<Program> p = parser_.ParseProgram("p(a).\nq(b).\nbroken(");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 3"), std::string::npos);
}

TEST_F(ParserTest, ParseAtomQuery) {
  Result<Atom> a = parser_.ParseAtom("instructor(manolis)");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->ToString(symbols_), "instructor(manolis)");
  // Optional trailing period.
  EXPECT_TRUE(parser_.ParseAtom("instructor(manolis).").ok());
}

TEST_F(ParserTest, ParseAtomRejectsTrailingInput) {
  EXPECT_FALSE(parser_.ParseAtom("p(a) junk").ok());
}

TEST_F(ParserTest, LoadProgramFillsDatabaseAndRules) {
  Database db;
  RuleBase rules;
  Status s = parser_.LoadProgram(
      "instructor(X) :- prof(X). prof(russ). prof(mark).", &db, &rules);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(db.CountFacts(symbols_.Intern("prof")), 2);
  EXPECT_EQ(rules.size(), 1u);
}

TEST_F(ParserTest, EmptyArgumentList) {
  Result<Program> p = parser_.ParseProgram("p().");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->facts[0].head.arity(), 0u);
}

TEST_F(ParserTest, RoundTripThroughToString) {
  const char* clauses[] = {
      "instructor(X) :- prof(X).",
      "path(X, Y) :- edge(X, Z), path(Z, Y).",
      "prof(russ).",
  };
  for (const char* text : clauses) {
    Result<Program> p = parser_.ParseProgram(text);
    ASSERT_TRUE(p.ok()) << text;
    const Clause& c =
        p->facts.empty() ? p->rules[0] : p->facts[0];
    EXPECT_EQ(c.ToString(symbols_), text);
  }
}

}  // namespace
}  // namespace stratlearn
