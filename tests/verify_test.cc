#include "verify/verify.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/json_writer.h"
#include "verify/diagnostics.h"
#include "verify/sarif.h"
#include "verify/suppressions.h"

namespace stratlearn::verify {
namespace {

// Golden-file tests: every diagnostic code has one minimal fixture under
// tests/testdata/verify/ whose rendered text output is pinned in a
// matching .expected file. Regenerate after an intentional output change
// with:  STRATLEARN_REGEN_GOLDEN=1 ./verify_test

/// One golden case: the files are fed to an ArtifactVerifier in order
/// (so e.g. a graph file can provide context for a strategy file) and
/// the sink's text rendering is compared against `golden`.
struct GoldenCase {
  const char* name;
  std::vector<const char*> files;
  const char* golden;
};

const GoldenCase kGoldenCases[] = {
    // Rule-base family.
    {"r001", {"r001_not_range_restricted.dl"}, "r001.expected"},
    {"r002", {"r002_non_ground_fact.dl"}, "r002.expected"},
    {"r003", {"r003_undefined_predicate.dl"}, "r003.expected"},
    {"r004", {"r004_unused_predicate.dl"}, "r004.expected"},
    {"r005", {"r005_direct_recursion.dl"}, "r005.expected"},
    {"r006", {"r006_mutual_recursion.dl"}, "r006.expected"},
    {"r007", {"r007_unsafe_negation.dl"}, "r007.expected"},
    {"r008", {"r008_unstratified_negation.dl"}, "r008.expected"},
    {"p001", {"p001_syntax_error.dl"}, "p001.expected"},
    // Inference-graph family.
    {"g001", {"g001_not_a_tree.graph"}, "g001.expected"},
    {"g002", {"g002_dangling_node.graph"}, "g002.expected"},
    {"g003", {"g003_non_positive_cost.graph"}, "g003.expected"},
    {"g004", {"g004_success_not_leaf.graph"}, "g004.expected"},
    {"g005", {"g005_dead_end.graph"}, "g005.expected"},
    {"g006", {"g006_depth_bound.graph"}, "g006.expected"},
    {"g008", {"g008_malformed_record.graph"}, "g008.expected"},
    {"g009", {"g009_build_failure.dl"}, "g009.expected"},
    // AND/OR family.
    {"a001", {"a001_dangling_parent.andor"}, "a001.expected"},
    {"a002", {"a002_childless_internal.andor"}, "a002.expected"},
    {"a003", {"a003_leaf_with_children.andor"}, "a003.expected"},
    {"a004", {"a004_non_positive_leaf_cost.andor"}, "a004.expected"},
    {"a005", {"a005_multiple_roots.andor"}, "a005.expected"},
    {"a006", {"a006_malformed_record.andor"}, "a006.expected"},
    // Strategy family (verified against the two-branch context graph).
    {"s001",
     {"context_two_branch.graph", "s001_dangling_arc.strategy"},
     "s001.expected"},
    {"s002",
     {"context_two_branch.graph", "s002_not_permutation.strategy"},
     "s002.expected"},
    {"s003",
     {"context_two_branch.graph", "s003_order_violation.strategy"},
     "s003.expected"},
    {"s004",
     {"context_two_branch.graph", "s004_swap_unreachable.strategy"},
     "s004.expected"},
    {"s005", {"s005_no_context.strategy"}, "s005.expected"},
    // Alert-config family.
    {"al001", {"al001_malformed.alerts"}, "al001.expected"},
    {"al002", {"al002_unknown_selector.alerts"}, "al002.expected"},
    {"al003", {"al003_bad_threshold.alerts"}, "al003.expected"},
    {"al004", {"al004_duplicate_id.alerts"}, "al004.expected"},
    {"al005", {"al005_empty.alerts"}, "al005.expected"},
    // Learner-config family.
    {"c001", {"c001_epsilon_range.cfg"}, "c001.expected"},
    {"c002", {"c002_delta_range.cfg"}, "c002.expected"},
    {"c003", {"c003_schedule_divergence.cfg"}, "c003.expected"},
    {"c004",
     {"context_two_branch.graph", "c004_quota_overflow.cfg"},
     "c004.expected"},
    {"c005",
     {"context_two_branch.graph", "c005_quota_exceeds_contexts.cfg"},
     "c005.expected"},
    {"c006", {"c006_non_positive_counts.cfg"}, "c006.expected"},
    {"c007", {"c007_unknown_key.cfg"}, "c007.expected"},
    // Adornment-dataflow family (fixpoint binding-pattern analysis).
    {"d001", {"d001_never_called.dl"}, "d001.expected"},
    {"d002", {"d002_all_free_scan.dl"}, "d002.expected"},
    {"d003", {"d003_filter_literal.dl"}, "d003.expected"},
    {"d004", {"d004_no_sip_order.dl"}, "d004.expected"},
    {"d005", {"d005_iteration_cap.dl"}, "d005.expected"},
    {"d006", {"d006_all_free_form.dl"}, "d006.expected"},
    // Abstract cost-interpretation family. A *.json file in the list is
    // fed as a --profile StrategyProfiler report, not as an artifact.
    {"x001",
     {"x001_profile.json", "x001_deep.graph", "x001_infeasible_quota.cfg"},
     "x001.expected"},
    {"x002",
     {"x002_profile.json", "x002_skewed.graph", "x002_left_first.strategy"},
     "x002.expected"},
    {"x003",
     {"x003_profile.json", "x001_deep.graph", "x003_order.strategy"},
     "x003.expected"},
    {"x004",
     {"x004_profile.json", "context_two_branch.graph",
      "x004_order.strategy"},
     "x004.expected"},
    {"x005", {"x005_bad_profile.json"}, "x005.expected"},
    // Suppression-baseline family. A *.suppressions file in the list is
    // parsed and applied to everything fed before it.
    {"sup001", {"clean.dl", "sup001_malformed.suppressions"},
     "sup001.expected"},
    {"sup002", {"r004_unused_predicate.dl", "sup002_stale.suppressions"},
     "sup002.expected"},
};

std::string FixturePath(const std::string& name) {
  return std::string(STRATLEARN_VERIFY_TESTDATA) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name));
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Feeds one case's files into a verifier; diagnostics carry the bare
/// fixture names, keeping the golden files checkout-path independent.
/// *.json files become the verifier's probability profile (the CLI's
/// --profile) and *.suppressions files are applied as a baseline (the
/// CLI's --suppressions); everything else is a verifiable artifact.
void FeedCase(ArtifactVerifier* verifier, DiagnosticSink* sink,
              const std::vector<const char*>& files) {
  for (const char* file : files) {
    std::string text = ReadFixture(file);
    if (HasSuffix(file, ".json")) {
      sink->set_file(file);
      verifier->set_profile(ParseArcProbProfile(text, sink));
    } else if (HasSuffix(file, ".suppressions")) {
      SuppressionSet set = ParseSuppressions(text, file, sink);
      ApplySuppressions(set, file, sink);
    } else {
      verifier->AddText(file, text);
    }
  }
}

/// Runs one golden case through a fresh verifier.
std::string RunCase(const GoldenCase& c) {
  DiagnosticSink sink;
  ArtifactVerifier verifier(&sink);
  FeedCase(&verifier, &sink, c.files);
  return sink.RenderText();
}

bool RegenRequested() {
  const char* env = std::getenv("STRATLEARN_REGEN_GOLDEN");
  return env != nullptr && std::string(env) == "1";
}

TEST(VerifyGolden, AllCases) {
  for (const GoldenCase& c : kGoldenCases) {
    SCOPED_TRACE(c.name);
    std::string rendered = RunCase(c);
    if (RegenRequested()) {
      std::ofstream out(FixturePath(c.golden));
      out << rendered;
      continue;
    }
    EXPECT_EQ(rendered, ReadFixture(c.golden));
  }
}

TEST(VerifyGolden, EveryCaseMentionsItsCode) {
  if (RegenRequested()) GTEST_SKIP();
  for (const GoldenCase& c : kGoldenCases) {
    SCOPED_TRACE(c.name);
    // Uppercase the letter prefix ("al001" -> "V-AL001").
    std::string code = "V-";
    const char* rest = c.name;
    for (; *rest != '\0' &&
           !std::isdigit(static_cast<unsigned char>(*rest));
         ++rest) {
      code += static_cast<char>(
          std::toupper(static_cast<unsigned char>(*rest)));
    }
    code += rest;
    EXPECT_NE(RunCase(c).find("[" + code + "]"), std::string::npos)
        << "fixture does not trigger its own diagnostic code";
  }
}

// Two independent runs over the same inputs must render byte-identical
// JSON (no timestamps, pointers, or hash-order leaks).
TEST(VerifyDeterminism, JsonByteIdentical) {
  auto render_all = [] {
    DiagnosticSink sink;
    ArtifactVerifier verifier(&sink);
    for (const GoldenCase& c : kGoldenCases) {
      FeedCase(&verifier, &sink, c.files);
    }
    return sink.RenderJson();
  };
  std::string first = render_all();
  std::string second = render_all();
  EXPECT_EQ(first, second);
  EXPECT_TRUE(obs::IsValidJson(first));
  // Also pinned: the combined JSON report over every golden case, so a
  // rendering change to any family (including the analyses sections)
  // shows up as a reviewable golden diff.
  if (RegenRequested()) {
    std::ofstream out(FixturePath("all_cases.json.expected"));
    out << first;
  } else {
    EXPECT_EQ(first, ReadFixture("all_cases.json.expected"));
  }
}

TEST(VerifyDeterminism, TextByteIdentical) {
  for (const GoldenCase& c : kGoldenCases) {
    SCOPED_TRACE(c.name);
    EXPECT_EQ(RunCase(c), RunCase(c));
  }
}

void CompareOrRegen(const std::string& golden, const std::string& rendered) {
  if (RegenRequested()) {
    std::ofstream out(FixturePath(golden));
    out << rendered;
    return;
  }
  EXPECT_EQ(rendered, ReadFixture(golden));
}

// Project mode: the testdata project/ tree (a program, a graph, a
// nested strategy + config, and one unrecognised notes.txt) is walked
// in kind-priority order, so the graph's context is live when the
// strategy under sub/ verifies. Pinned as a text golden.
TEST(VerifyProjectGolden, TestdataProject) {
  auto run = [] {
    DiagnosticSink sink;
    ArtifactVerifier verifier(&sink);
    EXPECT_TRUE(
        VerifyProject(&verifier, FixturePath("project"), &sink).ok());
    return sink.RenderText();
  };
  std::string rendered = run();
  EXPECT_EQ(rendered, run());  // byte-deterministic walk order
  CompareOrRegen("project.expected", rendered);
}

TEST(VerifyProjectGolden, MissingDirectoryIsAnError) {
  DiagnosticSink sink;
  ArtifactVerifier verifier(&sink);
  EXPECT_FALSE(
      VerifyProject(&verifier, FixturePath("no_such_dir"), &sink).ok());
}

// SARIF rendering over a mixed run (an adornment note, a build error,
// a certified cost interval): byte-exact against a pinned golden, and
// byte-identical across runs.
TEST(SarifGolden, ProjectRun) {
  auto run = [] {
    DiagnosticSink sink;
    ArtifactVerifier verifier(&sink);
    EXPECT_TRUE(
        VerifyProject(&verifier, FixturePath("project"), &sink).ok());
    return RenderSarif(sink);
  };
  std::string rendered = run();
  EXPECT_EQ(rendered, run());
  EXPECT_TRUE(obs::IsValidJson(rendered));
  CompareOrRegen("project.sarif.expected", rendered);
}

// --Werror in the machine formats: a warning renders as
// "severity":"error" with a "promoted" marker, and the summary's exit
// code moves to 2. Pinned as a JSON golden.
TEST(WerrorGolden, JsonPromotesWarnings) {
  DiagnosticSink sink;
  ArtifactVerifier verifier(&sink);
  verifier.AddText("r004_unused_predicate.dl",
                   ReadFixture("r004_unused_predicate.dl"));
  std::string rendered = sink.RenderJson(/*werror=*/true);
  EXPECT_TRUE(obs::IsValidJson(rendered));
  EXPECT_NE(rendered.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(rendered.find("\"promoted\":true"), std::string::npos);
  EXPECT_NE(rendered.find("\"exit_code\":2"), std::string::npos);
  CompareOrRegen("werror_r004.json.expected", rendered);
}

TEST(WerrorGolden, SarifPromotesWarnings) {
  DiagnosticSink sink;
  ArtifactVerifier verifier(&sink);
  verifier.AddText("r004_unused_predicate.dl",
                   ReadFixture("r004_unused_predicate.dl"));
  std::string rendered = RenderSarif(sink, /*werror=*/true);
  EXPECT_NE(rendered.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(rendered.find("\"promoted\":true"), std::string::npos);
  EXPECT_EQ(rendered.find("\"level\":\"warning\""), std::string::npos);
}

// The suppression baseline round-trip: a baseline generated from a
// run's findings suppresses exactly those findings on the next run.
TEST(SuppressionsTest, BaselineRoundTripSuppressesEverything) {
  DiagnosticSink first;
  ArtifactVerifier v1(&first);
  v1.AddText("r004_unused_predicate.dl",
             ReadFixture("r004_unused_predicate.dl"));
  ASSERT_GT(first.diagnostics().size(), 0u);
  std::string baseline = RenderSuppressionBaseline(first);

  DiagnosticSink second;
  ArtifactVerifier v2(&second);
  v2.AddText("r004_unused_predicate.dl",
             ReadFixture("r004_unused_predicate.dl"));
  SuppressionSet set = ParseSuppressions(baseline, "base", &second);
  size_t suppressed = ApplySuppressions(set, "base", &second);
  EXPECT_EQ(suppressed, first.diagnostics().size());
  EXPECT_EQ(second.ExitCode(), 0);
  EXPECT_EQ(second.num_suppressed(), suppressed);
}

// V-G007 is only reachable through a loaded program whose database lacks
// a retrieval's relation (from files, V-R003 subsumes it), so it is
// exercised directly against a hand-built graph.
TEST(VerifyBuiltGraphTest, RetrievalWithoutBackingRelationIsG007) {
  SymbolTable symbols;
  BuiltGraph built;
  NodeId root = built.graph.AddRoot("goal");
  auto added = built.graph.AddRetrieval(root, 1.0, "get");
  RetrievalSpec spec;
  spec.predicate = symbols.Intern("ghost");
  built.retrievals[added.arc] = spec;
  Database db;  // no facts for 'ghost'
  DiagnosticSink sink;
  VerifyBuiltGraph(built, db, symbols, &sink);
  ASSERT_EQ(sink.num_errors(), 1u);
  EXPECT_EQ(sink.diagnostics()[0].code, "V-G007");
}

TEST(VerifyBuiltGraphTest, CleanGraphHasNoFindings) {
  SymbolTable symbols;
  Database db;
  ASSERT_TRUE(db.Insert(symbols.Intern("e"), {symbols.Intern("a")}).ok());
  BuiltGraph built;
  NodeId root = built.graph.AddRoot("goal");
  auto added = built.graph.AddRetrieval(root, 1.0, "get-e");
  RetrievalSpec spec;
  spec.predicate = symbols.Intern("e");
  built.retrievals[added.arc] = spec;
  DiagnosticSink sink;
  VerifyBuiltGraph(built, db, symbols, &sink);
  EXPECT_TRUE(sink.empty()) << sink.RenderText();
}

TEST(DiagnosticSinkTest, ExitCodeContract) {
  DiagnosticSink clean;
  EXPECT_EQ(clean.ExitCode(), 0);
  clean.Note("V-X000", "", "fyi");
  EXPECT_EQ(clean.ExitCode(), 0);

  DiagnosticSink warns;
  warns.Warning("V-X000", "", "hm");
  EXPECT_EQ(warns.ExitCode(), 1);
  EXPECT_EQ(warns.ExitCode(/*werror=*/true), 2);
  EXPECT_FALSE(warns.HasBlocking());
  EXPECT_TRUE(warns.HasBlocking(/*werror=*/true));

  DiagnosticSink errors;
  errors.Error("V-X000", "", "bad");
  EXPECT_EQ(errors.ExitCode(), 2);
  EXPECT_TRUE(errors.HasBlocking());
}

TEST(GuardLoadedProgramTest, UndefinedPredicateBlocks) {
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  ASSERT_TRUE(parser
                  .LoadProgram("instructor(X) :- prauf(X). prof(russ).",
                               &db, &rules)
                  .ok());
  Result<QueryForm> form = QueryForm::Parse("instructor(b)", &symbols);
  ASSERT_TRUE(form.ok());
  Result<BuiltGraph> built = BuildInferenceGraph(rules, *form, &symbols);
  ASSERT_TRUE(built.ok());
  Status guarded = GuardLoadedProgram(rules, *built, db, symbols);
  ASSERT_FALSE(guarded.ok());
  EXPECT_EQ(guarded.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(guarded.message().find("V-R003"), std::string::npos);
}

TEST(GuardLoadedProgramTest, CleanProgramPasses) {
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  ASSERT_TRUE(parser
                  .LoadProgram("instructor(X) :- prof(X). prof(russ).",
                               &db, &rules)
                  .ok());
  Result<QueryForm> form = QueryForm::Parse("instructor(b)", &symbols);
  ASSERT_TRUE(form.ok());
  Result<BuiltGraph> built = BuildInferenceGraph(rules, *form, &symbols);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(GuardLoadedProgram(rules, *built, db, symbols).ok());
}

TEST(LearnerConfigTest, DefaultsAreClean) {
  DiagnosticSink sink;
  VerifyLearnerConfig(LearnerConfig{}, nullptr, &sink);
  EXPECT_TRUE(sink.empty()) << sink.RenderText();
}

TEST(LearnerConfigTest, ScheduleConstantMatchesSixOverPiSquared) {
  // 6/pi^2: the unique constant making sum(delta * c / i^2) == delta.
  double pi = 3.14159265358979323846;
  EXPECT_NEAR(kConvergentScheduleC, 6.0 / (pi * pi), 1e-15);
}

// ---- Recovery policies (V-RC) --------------------------------------------

TEST(RecoveryPolicyPass, ParsesFullPolicy) {
  DiagnosticSink sink;
  robust::RecoveryPolicy policy = ParseRecoveryPolicy(
      "# transient-drift reaction\n"
      "stratlearn-recovery v1\n"
      "ring 3\n"
      "on drift:p_hat rollback id=rewind cooldown=4\n"
      "on drift:any rebaseline trials_factor=0.5\n"
      "on alert:latency quarantine probe_cooldown=16\n",
      &sink);
  EXPECT_TRUE(sink.empty()) << sink.RenderText();
  EXPECT_EQ(policy.ring, 3);
  ASSERT_EQ(policy.rules.size(), 3u);
  EXPECT_EQ(policy.rules[0].id, "rewind");
  EXPECT_EQ(policy.rules[0].cooldown, 4);
  // Unnamed rules default to "<trigger>-><action>".
  EXPECT_EQ(policy.rules[1].id, "drift:any->rebaseline");
  EXPECT_DOUBLE_EQ(policy.rules[1].trials_factor, 0.5);
  EXPECT_EQ(policy.rules[2].probe_cooldown, 16);
}

TEST(RecoveryPolicyPass, MissingHeaderIsRC001) {
  DiagnosticSink sink;
  ParseRecoveryPolicy("on drift:p_hat rebaseline\n", &sink);
  EXPECT_TRUE(sink.HasBlocking());
  EXPECT_NE(sink.RenderText().find("V-RC001"), std::string::npos);
}

TEST(RecoveryPolicyPass, UnknownTriggerIsRC002) {
  DiagnosticSink sink;
  robust::RecoveryPolicy policy = ParseRecoveryPolicy(
      "stratlearn-recovery v1\n"
      "on drift:entropy rebaseline\n",
      &sink);
  EXPECT_TRUE(sink.HasBlocking());
  EXPECT_NE(sink.RenderText().find("V-RC002"), std::string::npos);
  EXPECT_TRUE(policy.rules.empty());  // malformed rules are dropped
}

TEST(RecoveryPolicyPass, BadActionsAndRangesAreRC003) {
  DiagnosticSink sink;
  ParseRecoveryPolicy(
      "stratlearn-recovery v1\n"
      "ring 0\n"
      "on drift:p_hat reboot\n"
      "on drift:any rebaseline trials_factor=1.5\n"
      "on drift:any rollback cooldown=-1\n",
      &sink);
  EXPECT_EQ(sink.num_errors(), 4u);
  std::string rendered = sink.RenderText();
  EXPECT_NE(rendered.find("V-RC003"), std::string::npos);
}

TEST(RecoveryPolicyPass, DuplicateRuleIdIsRC004) {
  DiagnosticSink sink;
  robust::RecoveryPolicy policy = ParseRecoveryPolicy(
      "stratlearn-recovery v1\n"
      "on drift:p_hat rebaseline id=react\n"
      "on drift:rate rollback id=react\n",
      &sink);
  EXPECT_TRUE(sink.HasBlocking());
  EXPECT_NE(sink.RenderText().find("V-RC004"), std::string::npos);
  ASSERT_EQ(policy.rules.size(), 1u);  // the first keeps the name
  EXPECT_EQ(policy.rules[0].trigger, "drift:p_hat");
}

TEST(RecoveryPolicyPass, EmptyPolicyWarnsRC005) {
  DiagnosticSink sink;
  ParseRecoveryPolicy("stratlearn-recovery v1\nring 2\n", &sink);
  EXPECT_FALSE(sink.HasBlocking());  // a warning, not an error
  EXPECT_EQ(sink.num_warnings(), 1u);
  EXPECT_NE(sink.RenderText().find("V-RC005"), std::string::npos);
}

TEST(RecoveryPolicyPass, GoodRulesSurviveBadNeighbours) {
  DiagnosticSink sink;
  robust::RecoveryPolicy policy = ParseRecoveryPolicy(
      "stratlearn-recovery v1\n"
      "on drift:sparkle rebaseline\n"
      "on drift:p_hat restart_scoped cooldown=2\n",
      &sink);
  EXPECT_TRUE(sink.HasBlocking());
  ASSERT_EQ(policy.rules.size(), 1u);
  EXPECT_EQ(policy.rules[0].action, "restart_scoped");
}

}  // namespace
}  // namespace stratlearn::verify
