#include "core/pib1.h"

#include <gtest/gtest.h>

#include "core/expected_cost.h"
#include "graph/examples.h"
#include "stats/chernoff.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

/// Feeds `n` oracle contexts through the current strategy into `pib1`.
void Feed(Pib1& pib1, const InferenceGraph& graph, ContextOracle& oracle,
          Rng& rng, int n) {
  QueryProcessor qp(&graph);
  for (int i = 0; i < n; ++i) {
    pib1.Observe(qp.Execute(pib1.current(), oracle.Next(rng)));
  }
}

TEST(Pib1Test, ApprovesGoodSwitch) {
  // Current strategy prof-first, but grad succeeds far more often: the
  // swap to grad-first should be approved.
  FigureOneGraph g = MakeFigureOne();
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Pib1 pib1(&g.graph, theta1, AllSiblingSwaps(g.graph)[0], {.delta = 0.05});
  IndependentOracle oracle({0.05, 0.9});
  Rng rng(1);
  Feed(pib1, g.graph, oracle, rng, 500);
  EXPECT_TRUE(pib1.ShouldSwitch());
  EXPECT_GT(pib1.delta_sum(), 0.0);
  EXPECT_EQ(pib1.samples(), 500);
}

TEST(Pib1Test, RejectsBadSwitch) {
  // Current strategy is already the good one.
  FigureOneGraph g = MakeFigureOne();
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Pib1 pib1(&g.graph, theta1, AllSiblingSwaps(g.graph)[0], {.delta = 0.05});
  IndependentOracle oracle({0.9, 0.05});
  Rng rng(2);
  Feed(pib1, g.graph, oracle, rng, 500);
  EXPECT_FALSE(pib1.ShouldSwitch());
}

TEST(Pib1Test, NoDecisionWithoutSamples) {
  FigureOneGraph g = MakeFigureOne();
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Pib1 pib1(&g.graph, theta1, AllSiblingSwaps(g.graph)[0]);
  EXPECT_FALSE(pib1.ShouldSwitch());
  EXPECT_EQ(pib1.Threshold(), 0.0);
}

TEST(Pib1Test, RangeIsFStarSum) {
  FigureOneGraph g = MakeFigureOne();
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Pib1 pib1(&g.graph, theta1, AllSiblingSwaps(g.graph)[0]);
  EXPECT_DOUBLE_EQ(pib1.range(), 4.0);  // f*(R_p) + f*(R_g)
}

TEST(Pib1Test, FalsePositiveRateBelowDelta) {
  // When the alternative is strictly worse, the switch must be approved
  // with probability < delta over independent runs.
  FigureOneGraph g = MakeFigureOne();
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  const double delta = 0.1;
  int false_positives = 0;
  const int runs = 200;
  Rng seed_rng(42);
  for (int r = 0; r < runs; ++r) {
    Pib1 pib1(&g.graph, theta1, AllSiblingSwaps(g.graph)[0],
              {.delta = delta});
    IndependentOracle oracle({0.6, 0.3});  // prof-first is optimal
    Rng rng = seed_rng.Fork();
    QueryProcessor qp(&g.graph);
    bool switched = false;
    for (int i = 0; i < 200 && !switched; ++i) {
      pib1.Observe(qp.Execute(pib1.current(), oracle.Next(rng)));
      switched = pib1.ShouldSwitch();
    }
    if (switched) ++false_positives;
  }
  EXPECT_LE(static_cast<double>(false_positives) / runs, delta);
}

TEST(ThreeCounterPib1Test, EquationThreeArithmetic) {
  ThreeCounterPib1 counter(2.0, 2.0, 0.05);
  for (int i = 0; i < 10; ++i) counter.RecordSolutionUnderSecondOnly();
  for (int i = 0; i < 2; ++i) counter.RecordSolutionUnderFirst();
  counter.RecordNoSolution();
  EXPECT_EQ(counter.m(), 13);
  EXPECT_EQ(counter.k_first(), 2);
  EXPECT_EQ(counter.k_second(), 10);
  // Delta sum = 10*2 - 2*2 = 16; threshold = 4*sqrt(13/2 ln 20).
  EXPECT_DOUBLE_EQ(counter.DeltaSum(), 16.0);
  EXPECT_DOUBLE_EQ(counter.Threshold(), SumThreshold(13, 0.05, 4.0));
  EXPECT_EQ(counter.ShouldSwitch(), 16.0 >= counter.Threshold());
}

TEST(ThreeCounterPib1Test, MatchesGenericPib1OnFigureOne) {
  // On G_A the literal three-counter version and the generic trace-based
  // version accumulate identical sums and thresholds.
  FigureOneGraph g = MakeFigureOne();
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Pib1 generic(&g.graph, theta1, AllSiblingSwaps(g.graph)[0],
               {.delta = 0.05});
  ThreeCounterPib1 counters(g.graph.FStar(g.r_p), g.graph.FStar(g.r_g),
                            0.05);
  IndependentOracle oracle({0.3, 0.5});
  Rng rng(7);
  QueryProcessor qp(&g.graph);
  for (int i = 0; i < 300; ++i) {
    Context ctx = oracle.Next(rng);
    Trace trace = qp.Execute(theta1, ctx);
    generic.Observe(trace);
    if (trace.success && trace.first_success_arc == g.d_p) {
      counters.RecordSolutionUnderFirst();
    } else if (trace.success && trace.first_success_arc == g.d_g) {
      counters.RecordSolutionUnderSecondOnly();
    } else {
      counters.RecordNoSolution();
    }
    ASSERT_DOUBLE_EQ(generic.delta_sum(), counters.DeltaSum()) << "i=" << i;
    ASSERT_DOUBLE_EQ(generic.Threshold(), counters.Threshold());
    ASSERT_EQ(generic.ShouldSwitch(), counters.ShouldSwitch());
  }
}

TEST(Pib1Test, SwitchDecisionIsCorrectDirection) {
  // After a confident switch, the alternative really is cheaper.
  FigureOneGraph g = MakeFigureOne();
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  std::vector<double> probs = {0.1, 0.8};
  Pib1 pib1(&g.graph, theta1, AllSiblingSwaps(g.graph)[0], {.delta = 0.02});
  IndependentOracle oracle(probs);
  Rng rng(11);
  Feed(pib1, g.graph, oracle, rng, 1000);
  ASSERT_TRUE(pib1.ShouldSwitch());
  EXPECT_LT(ExactExpectedCost(g.graph, pib1.alternative(), probs),
            ExactExpectedCost(g.graph, pib1.current(), probs));
}

}  // namespace
}  // namespace stratlearn
