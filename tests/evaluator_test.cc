#include "datalog/evaluator.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace stratlearn {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  void Load(const std::string& program) {
    Status s = parser_.LoadProgram(program, &db_, &rules_);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  Result<ProofResult> Prove(const std::string& query,
                            EvaluatorOptions options = {}) {
    Result<Atom> atom = parser_.ParseAtom(query);
    EXPECT_TRUE(atom.ok()) << atom.status().ToString();
    Evaluator evaluator(&db_, &rules_, options);
    return evaluator.Prove(*atom, &symbols_);
  }

  bool Proved(const std::string& query) {
    Result<ProofResult> r = Prove(query);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->proved;
  }

  SymbolTable symbols_;
  Parser parser_{&symbols_};
  Database db_;
  RuleBase rules_;
};

TEST_F(EvaluatorTest, DirectFactLookup) {
  Load("prof(russ).");
  EXPECT_TRUE(Proved("prof(russ)"));
  EXPECT_FALSE(Proved("prof(manolis)"));
}

TEST_F(EvaluatorTest, FigureOneKnowledgeBase) {
  Load(R"(
    instructor(X) :- prof(X).
    instructor(X) :- grad(X).
    grad(manolis).
    prof(russ).
  )");
  EXPECT_TRUE(Proved("instructor(manolis)"));
  EXPECT_TRUE(Proved("instructor(russ)"));
  EXPECT_FALSE(Proved("instructor(fred)"));
}

TEST_F(EvaluatorTest, ExistentialQuery) {
  Load("age(russ, 40). age(fred, 30).");
  EXPECT_TRUE(Proved("age(russ, X)"));
  EXPECT_FALSE(Proved("age(manolis, X)"));
}

TEST_F(EvaluatorTest, ConjunctiveBodyWithJoin) {
  Load(R"(
    grandparent(X, Y) :- parent(X, Z), parent(Z, Y).
    parent(ann, bob).
    parent(bob, cho).
    parent(bob, dee).
  )");
  EXPECT_TRUE(Proved("grandparent(ann, cho)"));
  EXPECT_TRUE(Proved("grandparent(ann, dee)"));
  EXPECT_FALSE(Proved("grandparent(bob, bob)"));
  EXPECT_TRUE(Proved("grandparent(ann, W)"));
}

TEST_F(EvaluatorTest, RecursiveRulesWithinDepthBudget) {
  Load(R"(
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    edge(a, b). edge(b, c). edge(c, d).
  )");
  EXPECT_TRUE(Proved("path(a, d)"));
  EXPECT_FALSE(Proved("path(d, a)"));
}

TEST_F(EvaluatorTest, SatisficingStopsAtFirstProof) {
  Load(R"(
    instructor(X) :- prof(X).
    instructor(X) :- grad(X).
    prof(russ).
    grad(russ).
  )");
  Result<ProofResult> r = Prove("instructor(russ)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->answers_found, 1);  // stops after the first proof
}

TEST_F(EvaluatorTest, FirstKAnswersVariant) {
  Load(R"(
    parent_of(X, Y) :- father(X, Y).
    parent_of(X, Y) :- mother(X, Y).
    father(kid, dad).
    mother(kid, mom).
  )");
  EvaluatorOptions options;
  options.max_answers = 2;
  Result<ProofResult> r = Prove("parent_of(kid, Y)", options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->answers_found, 2);
}

TEST_F(EvaluatorTest, GuardedRuleOnlyFiresForItsConstant) {
  // Section 4.1's example rule shape.
  Load(R"(
    grad(X) :- enrolled(X).
    grad(fred) :- admitted(fred, Y).
    admitted(fred, csc).
  )");
  EXPECT_TRUE(Proved("grad(fred)"));
  EXPECT_FALSE(Proved("grad(russ)"));
}

TEST_F(EvaluatorTest, StepBudgetExhaustion) {
  Load(R"(
    loop(X) :- loop(X).
    loop(X) :- base(X).
  )");
  EvaluatorOptions options;
  options.max_depth = 1000000;  // force the step budget to trigger first
  options.max_steps = 200;
  Result<ProofResult> r = Prove("loop(a)", options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(EvaluatorTest, DepthBudgetTerminatesRecursion) {
  Load("loop(X) :- loop(X).");
  EvaluatorOptions options;
  options.max_depth = 16;
  Result<ProofResult> r = Prove("loop(a)", options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->proved);
}

TEST_F(EvaluatorTest, CountsReductionsAndRetrievals) {
  Load(R"(
    instructor(X) :- prof(X).
    instructor(X) :- grad(X).
    grad(manolis).
  )");
  Result<ProofResult> r = Prove("instructor(manolis)");
  ASSERT_TRUE(r.ok());
  // Tried prof (1 retrieval, failed), then grad (1 retrieval, succeeded),
  // two rule reductions.
  EXPECT_EQ(r->reductions, 2);
  EXPECT_GE(r->retrievals, 2);
}

TEST_F(EvaluatorTest, PropositionalChaining) {
  Load("wet :- raining. raining.");
  EXPECT_TRUE(Proved("wet"));
}

}  // namespace
}  // namespace stratlearn
