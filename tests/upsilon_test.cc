#include "core/upsilon.h"

#include <gtest/gtest.h>

#include "core/expected_cost.h"
#include "graph/examples.h"
#include "util/math_util.h"
#include "workload/random_tree.h"

namespace stratlearn {
namespace {

TEST(UpsilonTest, FigureOneSectionFourExample) {
  // Section 4: with p^ = <18/30, 10/20>, Upsilon returns Theta_1 (prof
  // first); with the true Section 2 workload probabilities <0.6, 0.15>,
  // wait — 18/30 = 0.6 and 10/20 = 0.5: equal-cost subtrees order by
  // probability, so prof (0.6) precedes grad (0.5): Theta_1.
  FigureOneGraph g = MakeFigureOne();
  Result<UpsilonResult> r = UpsilonAot(g.graph, {18.0 / 30.0, 10.0 / 20.0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->exact);
  EXPECT_EQ(r->strategy.LeafOrder(g.graph),
            (std::vector<ArcId>{g.d_p, g.d_g}));

  // Section 2's true distribution <p_p, p_g> = <0.2, 0.6> (the PAO
  // illustration) prefers Theta_2 (grad first).
  Result<UpsilonResult> r2 = UpsilonAot(g.graph, {0.2, 0.6});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->strategy.LeafOrder(g.graph),
            (std::vector<ArcId>{g.d_g, g.d_p}));
  EXPECT_NEAR(r2->expected_cost,
              ExactExpectedCost(g.graph, r2->strategy, {0.2, 0.6}), 1e-12);
}

TEST(UpsilonTest, FlatGraphSortsByRatio) {
  // Flat trees order leaves by p/c descending (classic Simon-Kadane).
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  ArcId a = g.AddRetrieval(root, 4.0, "a").arc;  // ratio 0.5/4 = 0.125
  ArcId b = g.AddRetrieval(root, 1.0, "b").arc;  // ratio 0.2/1 = 0.2
  ArcId c = g.AddRetrieval(root, 2.0, "c").arc;  // ratio 0.9/2 = 0.45
  Result<UpsilonResult> r = UpsilonAot(g, {0.5, 0.2, 0.9});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->strategy.LeafOrder(g), (std::vector<ArcId>{c, b, a}));
}

TEST(UpsilonTest, SharedPrefixChangesOrdering) {
  // Two leaves under a costly shared prefix can beat a mediocre flat leaf
  // jointly even when neither beats it alone after paying the prefix.
  FigureTwoGraph g = MakeFigureTwo();
  // Make D_c and D_d strong, D_a and D_b weak.
  Result<UpsilonResult> r = UpsilonAot(g.graph, {0.05, 0.05, 0.7, 0.7});
  ASSERT_TRUE(r.ok());
  std::vector<ArcId> order = r->strategy.LeafOrder(g.graph);
  // The T subtree (c, d) should be visited before a and b.
  EXPECT_TRUE((order[0] == g.d_c || order[0] == g.d_d));
  EXPECT_TRUE((order[1] == g.d_c || order[1] == g.d_d));
}

TEST(UpsilonTest, RejectsBadInput) {
  FigureOneGraph g = MakeFigureOne();
  EXPECT_FALSE(UpsilonAot(g.graph, {0.5}).ok());            // wrong size
  EXPECT_FALSE(UpsilonAot(g.graph, {0.5, 1.5}).ok());       // out of range
}

// The central property: block merging equals brute force on random
// leaf-only AOT trees.
class UpsilonOptimalityProperty : public ::testing::TestWithParam<int> {};

TEST_P(UpsilonOptimalityProperty, MatchesBruteForce) {
  Rng rng(5000 + GetParam());
  RandomTreeOptions options;
  options.depth = 2 + GetParam() % 3;
  options.min_branch = 2;
  options.max_branch = 3;
  RandomTree tree = MakeRandomTree(rng, options);
  if (tree.graph.SuccessArcs().size() > 7) GTEST_SKIP() << "too large";

  Result<UpsilonResult> upsilon = UpsilonAot(tree.graph, tree.probs);
  ASSERT_TRUE(upsilon.ok()) << upsilon.status().ToString();
  EXPECT_TRUE(upsilon->exact);
  Result<OptimalResult> brute = BruteForceOptimal(tree.graph, tree.probs, 7);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(AlmostEqual(upsilon->expected_cost, brute->cost, 1e-7))
      << "upsilon=" << upsilon->expected_cost << " brute=" << brute->cost
      << " arcs=" << tree.graph.num_arcs();
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, UpsilonOptimalityProperty,
                         ::testing::Range(0, 60));

// Chains (retrieval runs) are still in the provably-exact class.
class UpsilonChainProperty : public ::testing::TestWithParam<int> {};

TEST_P(UpsilonChainProperty, ChainGraphsMatchBruteForce) {
  Rng rng(6000 + GetParam());
  // Hand-build a graph with chain leaves: root has 3-4 children, each a
  // chain of 1-3 experiments ending in a success node.
  InferenceGraph g;
  std::vector<double> probs;
  NodeId root = g.AddRoot("goal");
  int children = 3 + GetParam() % 2;
  for (int c = 0; c < children; ++c) {
    NodeId at = root;
    int chain = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < chain; ++i) {
      bool last = (i == chain - 1);
      auto added =
          g.AddChild(at, last ? "[leaf]" : "mid", ArcKind::kRetrieval,
                     rng.NextUniform(0.5, 2.0), "e",
                     /*is_experiment=*/true, /*is_success=*/last);
      probs.push_back(rng.NextUniform(0.1, 0.9));
      at = added.node;
    }
  }
  ASSERT_TRUE(IsBlockMergeExact(g));

  UpsilonOptions options;
  options.max_brute_force_leaves = 0;  // force block merging
  Result<UpsilonResult> upsilon = UpsilonAot(g, probs, options);
  ASSERT_TRUE(upsilon.ok()) << upsilon.status().ToString();
  EXPECT_TRUE(upsilon->exact);
  Result<OptimalResult> brute = BruteForceOptimal(g, probs, 7);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(AlmostEqual(upsilon->expected_cost, brute->cost, 1e-7))
      << "upsilon=" << upsilon->expected_cost << " brute=" << brute->cost;
}

INSTANTIATE_TEST_SUITE_P(RandomChains, UpsilonChainProperty,
                         ::testing::Range(0, 40));

TEST(UpsilonTest, GuardedBranchFallsBackToBruteForce) {
  // Experiment above a branching subtree: outside the exact class; with
  // few leaves Upsilon brute-forces and stays exact.
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  auto guard = g.AddChild(root, "s", ArcKind::kReduction, 1.0, "guard",
                          /*is_experiment=*/true);
  g.AddRetrieval(guard.node, 1.0, "d1");
  g.AddRetrieval(guard.node, 1.0, "d2");
  g.AddRetrieval(root, 2.0, "d3");
  EXPECT_FALSE(IsBlockMergeExact(g));

  std::vector<double> probs = {0.5, 0.6, 0.7, 0.4};
  Result<UpsilonResult> r = UpsilonAot(g, probs);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->exact);  // brute-force fallback
  Result<OptimalResult> brute = BruteForceOptimal(g, probs, 8);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(AlmostEqual(r->expected_cost, brute->cost, 1e-9));
}

TEST(UpsilonTest, ApproximationFlaggedWhenForced) {
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  auto guard = g.AddChild(root, "s", ArcKind::kReduction, 1.0, "guard",
                          /*is_experiment=*/true);
  g.AddRetrieval(guard.node, 1.0, "d1");
  g.AddRetrieval(guard.node, 1.0, "d2");
  g.AddRetrieval(root, 2.0, "d3");
  std::vector<double> probs = {0.5, 0.6, 0.7, 0.4};

  UpsilonOptions options;
  options.max_brute_force_leaves = 0;  // disable brute force
  Result<UpsilonResult> approx = UpsilonAot(g, probs, options);
  ASSERT_TRUE(approx.ok());
  EXPECT_FALSE(approx->exact);
  // The approximation should still be close to the optimum here.
  Result<OptimalResult> brute = BruteForceOptimal(g, probs, 8);
  ASSERT_TRUE(brute.ok());
  EXPECT_LE(approx->expected_cost, brute->cost * 1.25);

  options.allow_approximation = false;
  Result<UpsilonResult> rejected = UpsilonAot(g, probs, options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnimplemented);
}

TEST(UpsilonTest, LargeFlatGraphIsFast) {
  Rng rng(7);
  RandomTree tree = MakeFlatTree(rng, 5000);
  Result<UpsilonResult> r = UpsilonAot(tree.graph, tree.probs);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->exact);
  // Ratios must be non-increasing along the chosen order.
  std::vector<ArcId> order = r->strategy.LeafOrder(tree.graph);
  double prev = 1e300;
  for (ArcId leaf : order) {
    int e = tree.graph.ExperimentIndex(leaf);
    double ratio = tree.probs[e] / tree.graph.arc(leaf).cost;
    EXPECT_LE(ratio, prev + 1e-9);
    prev = ratio;
  }
}

TEST(UpsilonTest, DeadEndsOrderedLast) {
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  g.AddChild(root, "dead", ArcKind::kReduction, 1.0, "r_dead");
  ArcId leaf = g.AddRetrieval(root, 1.0, "d").arc;
  Result<UpsilonResult> r = UpsilonAot(g, {0.5});
  ASSERT_TRUE(r.ok());
  // The dead-end arc must come after the productive leaf.
  EXPECT_EQ(r->strategy.arcs().back(), g.node(root).out_arcs[0]);
  EXPECT_EQ(r->strategy.arcs().front(), leaf);
}

}  // namespace
}  // namespace stratlearn
