#include "stats/counters.h"

#include <gtest/gtest.h>

#include "stats/running_stats.h"

namespace stratlearn {
namespace {

TEST(ExperimentCounterTest, StartsEmpty) {
  ExperimentCounter c;
  EXPECT_EQ(c.attempts(), 0);
  EXPECT_EQ(c.successes(), 0);
  EXPECT_EQ(c.reach_attempts(), 0);
  EXPECT_EQ(c.SuccessFrequency(0.5), 0.5);  // fallback
  EXPECT_EQ(c.ReachFrequency(), 0.0);
}

TEST(ExperimentCounterTest, TracksAttempts) {
  ExperimentCounter c;
  c.RecordAttempt(true);
  c.RecordAttempt(false);
  c.RecordAttempt(true);
  EXPECT_EQ(c.attempts(), 3);
  EXPECT_EQ(c.successes(), 2);
  EXPECT_EQ(c.failures(), 1);
  EXPECT_DOUBLE_EQ(c.SuccessFrequency(), 2.0 / 3.0);
}

TEST(ExperimentCounterTest, BlockedAimsCountTowardReaches) {
  ExperimentCounter c;
  c.RecordAttempt(true);
  c.RecordBlockedAim();
  c.RecordBlockedAim();
  EXPECT_EQ(c.attempts(), 1);
  EXPECT_EQ(c.reach_attempts(), 3);
  EXPECT_DOUBLE_EQ(c.ReachFrequency(), 1.0 / 3.0);
}

TEST(ExperimentCounterTest, ResetClears) {
  ExperimentCounter c;
  c.RecordAttempt(true);
  c.RecordBlockedAim();
  c.Reset();
  EXPECT_EQ(c.attempts(), 0);
  EXPECT_EQ(c.reach_attempts(), 0);
}

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; sample variance 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, StdErrShrinksWithN) {
  RunningStats a, b;
  for (int i = 0; i < 10; ++i) a.Add(i % 2);
  for (int i = 0; i < 1000; ++i) b.Add(i % 2);
  EXPECT_GT(a.stderr_mean(), b.stderr_mean());
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
}

}  // namespace
}  // namespace stratlearn
