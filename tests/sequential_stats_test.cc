#include "stats/sequential.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/chernoff.h"
#include "util/math_util.h"

namespace stratlearn {
namespace {

TEST(SequentialDeltaTest, SeriesSumsToDelta) {
  // sum_i delta * 6/(pi^2 i^2) = delta; check partial sums converge from
  // below.
  double delta = 0.1;
  double partial = 0.0;
  for (int64_t i = 1; i <= 200000; ++i) {
    partial += SequentialDelta(i, delta);
  }
  EXPECT_LT(partial, delta);
  EXPECT_GT(partial, delta * 0.99);
}

TEST(SequentialDeltaTest, FirstTermValue) {
  double delta = 0.05;
  EXPECT_NEAR(SequentialDelta(1, delta), delta * 6.0 / (kPi * kPi), 1e-12);
}

TEST(SequentialDeltaTest, DecreasesQuadratically) {
  double delta = 0.2;
  EXPECT_NEAR(SequentialDelta(10, delta), SequentialDelta(1, delta) / 100.0,
              1e-12);
}

TEST(SequentialThresholdTest, MatchesSumThresholdAtDeltaI) {
  // Equation 6's threshold equals Equation 2's with delta_i substituted:
  // range * sqrt(n/2 ln(1/delta_i)) with delta_i = 6 delta / (pi^2 i^2).
  int64_t n = 40;
  int64_t i = 17;
  double delta = 0.05, range = 3.0;
  double delta_i = SequentialDelta(i, delta);
  EXPECT_NEAR(SequentialSumThreshold(n, i, delta, range),
              SumThreshold(n, delta_i, range), 1e-9);
}

TEST(SequentialThresholdTest, GrowsWithTrialCount) {
  EXPECT_LT(SequentialSumThreshold(50, 10, 0.1, 1.0),
            SequentialSumThreshold(50, 1000, 0.1, 1.0));
}

TEST(SequentialThresholdTest, GrowsSublinearlyWithSamples) {
  double t100 = SequentialSumThreshold(100, 10, 0.1, 1.0);
  double t400 = SequentialSumThreshold(400, 10, 0.1, 1.0);
  EXPECT_NEAR(t400 / t100, 2.0, 1e-9);  // sqrt scaling
}

TEST(SequentialThresholdTest, NeverNegative) {
  // Degenerate: huge delta and tiny i could make the log negative;
  // the implementation clamps at zero.
  EXPECT_GE(SequentialSumThreshold(1, 1, 0.99, 1.0), 0.0);
}

}  // namespace
}  // namespace stratlearn
