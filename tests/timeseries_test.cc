// Tests for the TimeSeriesCollector: window boundaries, delta and rate
// derivation, per-arc windowed p-hat / mean-cost series, ring-buffer
// eviction accounting, and the JSONL serialization's determinism.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "util/string_util.h"

namespace stratlearn {
namespace {

using obs::ArcAttemptEvent;
using obs::MetricsRegistry;
using obs::TimeSeriesCollector;
using obs::TimeSeriesOptions;
using obs::TimeSeriesWindow;

ArcAttemptEvent Attempt(uint32_t arc, bool unblocked, double cost) {
  ArcAttemptEvent e;
  e.arc = arc;
  e.unblocked = unblocked;
  e.cost = cost;
  return e;
}

TEST(TimeSeriesTest, WindowsCloseOnCadence) {
  MetricsRegistry registry;
  TimeSeriesCollector collector(&registry, {.interval_us = 100});
  registry.GetCounter("c").Increment(5);
  collector.AdvanceTo(99);  // still inside window 0
  EXPECT_EQ(collector.windows_closed(), 0);
  collector.AdvanceTo(100);  // boundary: window [0, 100) closes
  EXPECT_EQ(collector.windows_closed(), 1);
  collector.AdvanceTo(450);  // closes [100,200), [200,300), [300,400)
  EXPECT_EQ(collector.windows_closed(), 4);

  std::vector<TimeSeriesWindow> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows[0].start_us, 0);
  EXPECT_EQ(windows[0].end_us, 100);
  EXPECT_EQ(windows[3].start_us, 300);
  EXPECT_EQ(windows[3].end_us, 400);
  // The counter moved only in window 0; later windows carry zero deltas
  // (a quiet stretch is empty windows, not a gap).
  EXPECT_EQ(windows[0].counter_deltas.at("c"), 5);
  EXPECT_EQ(windows[1].counter_deltas.at("c"), 0);
  EXPECT_EQ(windows[0].cumulative.counters.at("c"), 5);
  EXPECT_EQ(windows[3].cumulative.counters.at("c"), 5);
}

TEST(TimeSeriesTest, CounterDeltasAndRates) {
  MetricsRegistry registry;
  obs::Counter& c = registry.GetCounter("qp.queries");
  TimeSeriesCollector collector(&registry, {.interval_us = 1'000'000});
  c.Increment(100);
  collector.AdvanceTo(1'000'000);
  c.Increment(300);
  collector.AdvanceTo(2'000'000);

  std::vector<TimeSeriesWindow> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].counter_deltas.at("qp.queries"), 100);
  EXPECT_EQ(windows[1].counter_deltas.at("qp.queries"), 300);
  EXPECT_EQ(windows[1].cumulative.counters.at("qp.queries"), 400);
  // 300 in one second.
  EXPECT_DOUBLE_EQ(
      windows[1].Rate(windows[1].counter_deltas.at("qp.queries")), 300.0);
}

TEST(TimeSeriesTest, HistogramDeltasTrackWindowActivity) {
  MetricsRegistry registry;
  obs::Histogram& h = registry.GetHistogram("qp.query_cost", {10.0});
  TimeSeriesCollector collector(&registry, {.interval_us = 100});
  h.Record(2.0);
  h.Record(4.0);
  collector.AdvanceTo(100);
  h.Record(6.0);
  collector.AdvanceTo(200);

  std::vector<TimeSeriesWindow> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 2u);
  const obs::HistogramDelta& w0 =
      windows[0].histogram_deltas.at("qp.query_cost");
  EXPECT_EQ(w0.count, 2);
  EXPECT_DOUBLE_EQ(w0.sum, 6.0);
  EXPECT_DOUBLE_EQ(w0.Mean(), 3.0);
  const obs::HistogramDelta& w1 =
      windows[1].histogram_deltas.at("qp.query_cost");
  EXPECT_EQ(w1.count, 1);
  EXPECT_DOUBLE_EQ(w1.sum, 6.0);
  EXPECT_DOUBLE_EQ(w1.Mean(), 6.0);
  EXPECT_EQ(windows[1].cumulative.histograms.at("qp.query_cost").count, 3);
}

TEST(TimeSeriesTest, PerArcWindowedEstimates) {
  // The drift-detection substrate: p-hat over *this window's* attempts.
  TimeSeriesCollector collector(nullptr, {.interval_us = 100});
  for (int i = 0; i < 8; ++i) collector.OnArcAttempt(Attempt(0, i < 2, 1.0));
  collector.OnArcAttempt(Attempt(3, true, 2.5));
  collector.AdvanceTo(100);
  // Window 2: arc 0 shifts to mostly-unblocked; arc 3 goes quiet.
  for (int i = 0; i < 4; ++i) collector.OnArcAttempt(Attempt(0, true, 2.0));
  collector.AdvanceTo(200);

  std::vector<TimeSeriesWindow> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 2u);
  ASSERT_EQ(windows[0].arcs.size(), 2u);
  EXPECT_EQ(windows[0].arcs[0].arc, 0u);
  EXPECT_EQ(windows[0].arcs[0].attempts, 8);
  EXPECT_DOUBLE_EQ(windows[0].arcs[0].PHat(), 0.25);
  EXPECT_DOUBLE_EQ(windows[0].arcs[0].MeanCost(), 1.0);
  EXPECT_EQ(windows[0].arcs[1].arc, 3u);
  EXPECT_DOUBLE_EQ(windows[0].arcs[1].PHat(), 1.0);
  EXPECT_DOUBLE_EQ(windows[0].arcs[1].MeanCost(), 2.5);
  // Window 2 reports only the active arc, with its windowed (not
  // cumulative) estimate.
  ASSERT_EQ(windows[1].arcs.size(), 1u);
  EXPECT_EQ(windows[1].arcs[0].arc, 0u);
  EXPECT_EQ(windows[1].arcs[0].attempts, 4);
  EXPECT_DOUBLE_EQ(windows[1].arcs[0].PHat(), 1.0);
  EXPECT_DOUBLE_EQ(windows[1].arcs[0].MeanCost(), 2.0);
}

TEST(TimeSeriesTest, FinalizeClosesPartialTrailingWindow) {
  MetricsRegistry registry;
  TimeSeriesCollector collector(&registry, {.interval_us = 100});
  registry.GetCounter("c").Increment(1);
  collector.Finalize(250);  // [0,100), [100,200), partial [200,250)
  std::vector<TimeSeriesWindow> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[2].start_us, 200);
  EXPECT_EQ(windows[2].end_us, 250);
  EXPECT_EQ(windows[2].span_us(), 50);
  // Finalize exactly on a boundary adds no empty partial window.
  MetricsRegistry registry2;
  TimeSeriesCollector exact(&registry2, {.interval_us = 100});
  exact.Finalize(200);
  EXPECT_EQ(exact.windows_closed(), 2);
}

TEST(TimeSeriesTest, RingEvictsOldestAndCountsIt) {
  MetricsRegistry registry;
  TimeSeriesCollector collector(&registry,
                                {.interval_us = 10, .capacity = 3});
  collector.AdvanceTo(80);  // 8 windows through a 3-window ring
  EXPECT_EQ(collector.windows_closed(), 8);
  EXPECT_EQ(collector.windows_evicted(), 5);
  std::vector<TimeSeriesWindow> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 3u);
  // Indices survive eviction — the retained tail is windows 5..7.
  EXPECT_EQ(windows[0].index, 5);
  EXPECT_EQ(windows[2].index, 7);
  // Serialization reports the eviction instead of hiding it.
  std::string jsonl = collector.SerializeJsonl();
  EXPECT_NE(jsonl.find("\"windows_evicted\":5"), std::string::npos);
}

TEST(TimeSeriesTest, SerializeJsonlIsValidAndDeterministic) {
  auto run = [] {
    MetricsRegistry registry;
    obs::Counter& c = registry.GetCounter("qp.queries");
    obs::Histogram& h = registry.GetHistogram("qp.query_cost", {10.0});
    TimeSeriesCollector collector(&registry, {.interval_us = 100});
    for (int w = 0; w < 3; ++w) {
      c.Increment(10 + w);
      h.Record(w + 0.5);
      collector.OnArcAttempt(Attempt(1, w % 2 == 0, 1.5));
      collector.AdvanceTo((w + 1) * 100);
    }
    return collector.SerializeJsonl();
  };
  std::string a = run();
  EXPECT_EQ(a, run());

  std::vector<std::string> lines;
  for (const std::string& line : Split(a, '\n')) {
    if (!Trim(line).empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);  // header + 3 windows
  for (const std::string& line : lines) {
    EXPECT_TRUE(obs::IsValidJson(line)) << line;
  }
  EXPECT_NE(lines[0].find("\"schema\":\"stratlearn-timeseries-v1\""),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"p_hat\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"rate_per_s\""), std::string::npos);
}

TEST(TimeSeriesTest, NullRegistryYieldsArcSeriesOnly) {
  TimeSeriesCollector collector(nullptr, {.interval_us = 50});
  collector.OnArcAttempt(Attempt(2, true, 1.0));
  collector.AdvanceTo(50);
  std::vector<TimeSeriesWindow> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_TRUE(windows[0].cumulative.counters.empty());
  ASSERT_EQ(windows[0].arcs.size(), 1u);
  EXPECT_EQ(windows[0].arcs[0].arc, 2u);
}

TEST(TimeSeriesTest, LongRunEvictionKeepsSeriesConsistent) {
  // A long run through a small ring: every retained window must keep
  // contiguous indices, correct bounds, and deltas that re-sum to the
  // cumulative total even though most windows were evicted.
  MetricsRegistry registry;
  obs::Counter& c = registry.GetCounter("qp.queries");
  TimeSeriesCollector collector(&registry,
                                {.interval_us = 10, .capacity = 4});
  const int64_t kWindows = 1000;
  for (int64_t w = 0; w < kWindows; ++w) {
    c.Increment(w + 1);  // distinct delta per window
    collector.OnArcAttempt(Attempt(0, w % 2 == 0, 1.0));
    collector.AdvanceTo((w + 1) * 10);
  }
  EXPECT_EQ(collector.windows_closed(), kWindows);
  EXPECT_EQ(collector.windows_evicted(), kWindows - 4);
  std::vector<TimeSeriesWindow> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 4u);
  for (size_t i = 0; i < windows.size(); ++i) {
    const TimeSeriesWindow& w = windows[i];
    EXPECT_EQ(w.index, kWindows - 4 + static_cast<int64_t>(i));
    EXPECT_EQ(w.start_us, w.index * 10);
    EXPECT_EQ(w.end_us, w.start_us + 10);
    // Window w's delta is w.index + 1 by construction.
    EXPECT_EQ(w.counter_deltas.at("qp.queries"), w.index + 1);
    ASSERT_EQ(w.arcs.size(), 1u);
    EXPECT_EQ(w.arcs[0].attempts, 1);
  }
  // The cumulative snapshot in the last window is the full-run total,
  // not just the retained tail.
  EXPECT_EQ(windows.back().cumulative.counters.at("qp.queries"),
            kWindows * (kWindows + 1) / 2);
}

TEST(TimeSeriesTest, RatesAcrossCadenceGapsCountEmptyWindows) {
  // A burst followed by a long silent stretch: AdvanceTo far ahead must
  // materialize the intermediate empty windows, each with a zero delta
  // and zero rate — a gap in activity is not a gap in the series.
  MetricsRegistry registry;
  obs::Counter& c = registry.GetCounter("qp.queries");
  TimeSeriesCollector collector(&registry, {.interval_us = 1'000'000});
  c.Increment(500);
  collector.AdvanceTo(1'000'000);
  // Another burst, then the clock jumps 4 windows ahead in one advance.
  c.Increment(250);
  collector.AdvanceTo(5'000'000);
  std::vector<TimeSeriesWindow> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 5u);
  EXPECT_DOUBLE_EQ(
      windows[0].Rate(windows[0].counter_deltas.at("qp.queries")), 500.0);
  // The collector snapshots at window close: increments made before a
  // multi-window advance are attributed to the *first* window that
  // advance closes, and the remaining gap windows carry zero deltas
  // and zero rates — never a delta amortized across the stretch.
  EXPECT_EQ(windows[1].counter_deltas.at("qp.queries"), 250);
  EXPECT_DOUBLE_EQ(
      windows[1].Rate(windows[1].counter_deltas.at("qp.queries")), 250.0);
  for (int i = 2; i < 5; ++i) {
    EXPECT_EQ(windows[i].counter_deltas.at("qp.queries"), 0) << i;
    EXPECT_DOUBLE_EQ(
        windows[i].Rate(windows[i].counter_deltas.at("qp.queries")), 0.0)
        << i;
    EXPECT_EQ(windows[i].span_us(), 1'000'000) << i;
  }
}

TEST(TimeSeriesTest, ZeroArcActivityWindowsOmitArcSeries) {
  // Arc-quiet windows carry no arc entries at all (absent, not p-hat
  // 0), which is what keeps the drift detector from treating a silent
  // arc as a failing one.
  TimeSeriesCollector collector(nullptr, {.interval_us = 100});
  collector.OnArcAttempt(Attempt(1, true, 1.0));
  collector.AdvanceTo(100);  // window 0: active
  collector.AdvanceTo(200);  // window 1: silent
  collector.OnArcAttempt(Attempt(1, false, 2.0));
  collector.AdvanceTo(300);  // window 2: active again
  std::vector<TimeSeriesWindow> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].arcs.size(), 1u);
  EXPECT_TRUE(windows[1].arcs.empty());
  ASSERT_EQ(windows[2].arcs.size(), 1u);
  // The windowed estimate restarts from the new window's attempts; it
  // does not leak the pre-gap history.
  EXPECT_EQ(windows[2].arcs[0].attempts, 1);
  EXPECT_DOUBLE_EQ(windows[2].arcs[0].PHat(), 0.0);
  EXPECT_DOUBLE_EQ(windows[2].arcs[0].MeanCost(), 2.0);
  // Serialization mirrors the omission: the quiet window's arc series
  // is an empty array, not zero-filled entries.
  std::string jsonl = collector.SerializeJsonl();
  std::vector<std::string> lines;
  for (const std::string& line : Split(jsonl, '\n')) {
    if (!Trim(line).empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[1].find("\"attempts\":1"), std::string::npos);
  EXPECT_NE(lines[2].find("\"arcs\":[]"), std::string::npos);
}

TEST(TimeSeriesTest, InvalidOptionsAbort) {
  MetricsRegistry registry;
  EXPECT_DEATH(TimeSeriesCollector(&registry, {.interval_us = 0}),
               "interval");
  EXPECT_DEATH(
      TimeSeriesCollector(&registry, {.interval_us = 10, .capacity = 0}),
      "capacity");
}

}  // namespace
}  // namespace stratlearn
