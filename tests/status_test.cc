#include "util/status.h"

#include <gtest/gtest.h>

namespace stratlearn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arity");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, AccessingErrorValueAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.value(); }, "boom");
}

Status Inner(bool fail) {
  if (fail) return Status::OutOfRange("inner failed");
  return Status::OK();
}

Status Outer(bool fail) {
  STRATLEARN_RETURN_IF_ERROR(Inner(fail));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Outer(false).ok());
  EXPECT_EQ(Outer(true).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace stratlearn
