// Tests for the obs/health stack: drift detectors (Hoeffding p-hat
// change test, Page-Hinkley cost ramp, counter-rate spikes), the alert
// engine's firing/resolved state machine, the HealthMonitor's
// determinism, series round-tripping through the JSONL serialization,
// trace replay of drift/alert events, and the DriftingOracle that
// feeds the bench workload.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/health/alerts.h"
#include "obs/health/drift.h"
#include "obs/health/monitor.h"
#include "obs/health/series_io.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/sinks.h"
#include "obs/timeseries.h"
#include "obs/trace_reader.h"
#include "util/rng.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

using obs::AlertEvent;
using obs::ArcWindowStats;
using obs::DriftEvent;
using obs::MetricsRegistry;
using obs::TimeSeriesCollector;
using obs::TimeSeriesWindow;
using obs::health::AlertEngine;
using obs::health::AlertRule;
using obs::health::AlertRuleSet;
using obs::health::DriftDetector;
using obs::health::DriftOptions;
using obs::health::HealthMonitor;
using obs::health::HealthOptions;
using obs::health::MetricSelector;
using obs::health::ParseMetricSelector;

/// Builds a synthetic closed window: one arc series plus optional
/// counter deltas, 100us cadence.
TimeSeriesWindow Window(int64_t index, ArcWindowStats arc) {
  TimeSeriesWindow w;
  w.index = index;
  w.start_us = index * 100;
  w.end_us = (index + 1) * 100;
  w.arcs.push_back(arc);
  return w;
}

ArcWindowStats Arc(uint32_t arc, int64_t attempts, int64_t unblocked,
                   double mean_cost) {
  ArcWindowStats a;
  a.arc = arc;
  a.attempts = attempts;
  a.unblocked = unblocked;
  a.cost = mean_cost * static_cast<double>(attempts);
  return a;
}

// ---------------------------------------------------------------- drift

TEST(DriftDetectorTest, PHatStepChangeDetectedThenCleared) {
  DriftDetector detector(DriftOptions{});
  // Stationary regime: p-hat 0.8 over 100 attempts per window.
  std::vector<DriftEvent> events;
  for (int64_t i = 0; i < 8; ++i) {
    events = detector.Observe(Window(i, Arc(0, 100, 80, 1.0)));
    EXPECT_TRUE(events.empty()) << "false positive in window " << i;
  }
  // Step change: p-hat drops to 0.2 — far outside the Hoeffding band.
  events = detector.Observe(Window(8, Arc(0, 100, 20, 1.0)));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detector, "p_hat");
  EXPECT_EQ(events[0].state, "detected");
  EXPECT_EQ(events[0].arc, 0);
  EXPECT_EQ(events[0].window, 8);
  EXPECT_NEAR(events[0].statistic, 0.2, 1e-12);
  EXPECT_NEAR(events[0].reference, 0.8, 1e-12);
  EXPECT_EQ(detector.ActiveCount(), 1);
  // The detector re-baselines on detection: once the series is stable
  // in the new regime it clears instead of alarming forever.
  events = detector.Observe(Window(9, Arc(0, 100, 20, 1.0)));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].state, "cleared");
  EXPECT_EQ(detector.ActiveCount(), 0);

  std::vector<DriftDetector::SeriesSummary> summaries =
      detector.Summaries();
  ASSERT_FALSE(summaries.empty());
  EXPECT_EQ(summaries[0].detector, "p_hat");
  EXPECT_EQ(summaries[0].detections, 1);
  EXPECT_FALSE(summaries[0].active);
}

TEST(DriftDetectorTest, StationarySeriesStaysQuiet) {
  DriftDetector detector(DriftOptions{});
  for (int64_t i = 0; i < 50; ++i) {
    // Mild binomial-scale wobble around 0.5 that Hoeffding must absorb.
    int64_t unblocked = 50 + (i % 3) - 1;
    EXPECT_TRUE(
        detector.Observe(Window(i, Arc(0, 100, unblocked, 1.0))).empty())
        << "false positive in window " << i;
  }
  EXPECT_EQ(detector.ActiveCount(), 0);
}

TEST(DriftDetectorTest, MinAttemptsGatesThePHatTest) {
  DriftDetector detector(DriftOptions{});
  // Wild swings, but only 10 attempts per window (< min_attempts=32):
  // the deviation bound is vacuous there, so the test must not run.
  for (int64_t i = 0; i < 30; ++i) {
    int64_t unblocked = (i % 2 == 0) ? 10 : 0;
    EXPECT_TRUE(
        detector.Observe(Window(i, Arc(0, 10, unblocked, 1.0))).empty());
  }
  EXPECT_EQ(detector.ActiveCount(), 0);
}

TEST(DriftDetectorTest, PageHinkleyCatchesCostRamp) {
  DriftDetector detector(DriftOptions{});
  bool detected = false;
  for (int64_t i = 0; i < 10 && !detected; ++i) {
    for (const DriftEvent& e :
         detector.Observe(Window(i, Arc(0, 100, 80, 1.0)))) {
      detected |= e.detector == "mean_cost";
    }
  }
  EXPECT_FALSE(detected) << "flat cost series must not alarm";
  // Slow upward ramp: +0.5 mean cost per window. A two-window test
  // would never flag any single step; Page-Hinkley accumulates it.
  for (int64_t i = 10; i < 80 && !detected; ++i) {
    double cost = 1.0 + 0.5 * static_cast<double>(i - 9);
    for (const DriftEvent& e :
         detector.Observe(Window(i, Arc(0, 100, 80, cost)))) {
      if (e.detector == "mean_cost") {
        detected = true;
        EXPECT_EQ(e.state, "detected");
        EXPECT_EQ(e.arc, 0);
      }
    }
  }
  EXPECT_TRUE(detected);
}

TEST(DriftDetectorTest, RateSpikeOnWatchedCounterOnly) {
  DriftDetector detector(DriftOptions{});
  auto window_with = [](int64_t index, const std::string& counter,
                        int64_t delta) {
    TimeSeriesWindow w;
    w.index = index;
    w.start_us = index * 100;
    w.end_us = (index + 1) * 100;
    w.counter_deltas[counter] = delta;
    return w;
  };
  // Quiet baseline on a watched counter.
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(
        detector.Observe(window_with(i, "robust.faults", 0)).empty());
  }
  std::vector<DriftEvent> events =
      detector.Observe(window_with(5, "robust.faults", 50));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detector, "rate");
  EXPECT_EQ(events[0].state, "detected");
  EXPECT_EQ(events[0].counter, "robust.faults");
  EXPECT_EQ(events[0].arc, -1);
  events = detector.Observe(window_with(6, "robust.faults", 0));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].state, "cleared");

  // The same spike on an unwatched counter is ignored.
  DriftDetector other(DriftOptions{});
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(other.Observe(window_with(i, "qp.queries", 0)).empty());
  }
  EXPECT_TRUE(other.Observe(window_with(5, "qp.queries", 50)).empty());
}

// ---------------------------------------------------------------- alerts

AlertRule Rule(const std::string& id, const std::string& selector,
               const std::string& comparator, double threshold,
               int64_t for_windows = 1) {
  AlertRule r;
  r.id = id;
  r.metric = selector;
  r.selector = ParseMetricSelector(selector);
  EXPECT_NE(r.selector.kind, MetricSelector::Kind::kInvalid) << selector;
  r.comparator = comparator;
  r.threshold = threshold;
  r.for_windows = for_windows;
  return r;
}

TEST(AlertEngineTest, FiresAfterForWindowsAndResolves) {
  AlertRuleSet rules;
  rules.rules.push_back(Rule("hot", "counter_delta:qp.queries", ">", 10.0,
                             /*for_windows=*/2));
  AlertEngine engine(std::move(rules), nullptr);

  auto window_with = [](int64_t index, int64_t delta) {
    TimeSeriesWindow w;
    w.index = index;
    w.start_us = index * 100;
    w.end_us = (index + 1) * 100;
    w.counter_deltas["qp.queries"] = delta;
    return w;
  };
  // First breach: streak 1 of 2, no transition yet.
  EXPECT_TRUE(engine.Evaluate(window_with(0, 20), 0).empty());
  EXPECT_FALSE(engine.AnyFiring());
  // Second consecutive breach: fires.
  std::vector<AlertEvent> events = engine.Evaluate(window_with(1, 20), 0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].rule, "hot");
  EXPECT_EQ(events[0].state, "firing");
  EXPECT_EQ(events[0].metric, "counter_delta:qp.queries");
  EXPECT_DOUBLE_EQ(events[0].value, 20.0);
  EXPECT_EQ(events[0].for_windows, 2);
  EXPECT_TRUE(engine.AnyFiring());
  EXPECT_EQ(engine.FiringCount(), 1);
  // Still breached: no duplicate transition.
  EXPECT_TRUE(engine.Evaluate(window_with(2, 20), 0).empty());
  // Back under threshold: resolves.
  events = engine.Evaluate(window_with(3, 0), 0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].state, "resolved");
  EXPECT_FALSE(engine.AnyFiring());
}

TEST(AlertEngineTest, BreachStreakResetsOnOneGoodWindow) {
  AlertRuleSet rules;
  rules.rules.push_back(
      Rule("hot", "counter_delta:qp.queries", ">", 10.0, 2));
  AlertEngine engine(std::move(rules), nullptr);
  auto window_with = [](int64_t index, int64_t delta) {
    TimeSeriesWindow w;
    w.index = index;
    w.counter_deltas["qp.queries"] = delta;
    return w;
  };
  // breach, ok, breach, ok, ... never reaches for=2.
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        engine.Evaluate(window_with(i, i % 2 == 0 ? 20 : 0), 0).empty());
  }
  EXPECT_FALSE(engine.AnyFiring());
}

TEST(AlertEngineTest, AbsentSeriesNeitherBreachesNorCounts) {
  AlertRuleSet rules;
  rules.rules.push_back(Rule("arc5", "arc_p_hat:5", "<", 0.5, 1));
  AlertEngine engine(std::move(rules), nullptr);
  // Window carries arc 0 only: the arc-5 series is absent, so the rule
  // is not evaluated at all (p-hat of a silent arc is unknown, not 0).
  EXPECT_TRUE(engine.Evaluate(Window(0, Arc(0, 10, 0, 1.0)), 0).empty());
  EXPECT_FALSE(engine.AnyFiring());
  // Once the arc shows up under the threshold, it fires.
  std::vector<AlertEvent> events =
      engine.Evaluate(Window(1, Arc(5, 10, 1, 1.0)), 0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].state, "firing");
}

TEST(AlertEngineTest, DriftActiveSelectorAndGaugeExport) {
  MetricsRegistry registry;
  AlertRuleSet rules;
  rules.rules.push_back(Rule("drift", "drift_active", ">=", 1.0, 1));
  AlertEngine engine(std::move(rules), &registry);
  TimeSeriesWindow w;
  w.index = 0;
  EXPECT_TRUE(engine.Evaluate(w, /*drift_active=*/0).empty());
  EXPECT_DOUBLE_EQ(registry.GetGauge("alert_firing.drift").value(), 0.0);
  w.index = 1;
  ASSERT_EQ(engine.Evaluate(w, /*drift_active=*/2).size(), 1u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("alert_firing.drift").value(), 1.0);
  w.index = 2;
  ASSERT_EQ(engine.Evaluate(w, /*drift_active=*/0).size(), 1u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("alert_firing.drift").value(), 0.0);
}

// --------------------------------------------------------------- monitor

/// A drifting window sequence with enough structure to exercise both a
/// drift detection and an alert transition.
std::vector<TimeSeriesWindow> DriftingSequence() {
  std::vector<TimeSeriesWindow> windows;
  for (int64_t i = 0; i < 16; ++i) {
    bool shifted = i >= 10;
    TimeSeriesWindow w = Window(i, Arc(0, 100, shifted ? 20 : 80, 1.0));
    w.counter_deltas["qp.queries"] = 100;
    windows.push_back(std::move(w));
  }
  return windows;
}

AlertRuleSet MonitorRules() {
  AlertRuleSet rules;
  rules.rules.push_back(Rule("drift", "drift_active", ">=", 1.0, 1));
  rules.rules.push_back(
      Rule("flow", "counter_delta:qp.queries", ">=", 1.0, 1));
  return rules;
}

TEST(HealthMonitorTest, DetectsDriftAndFiresRules) {
  HealthMonitor monitor(MonitorRules(), HealthOptions{});
  for (const TimeSeriesWindow& w : DriftingSequence()) monitor.OnWindow(w);
  EXPECT_EQ(monitor.windows_seen(), 16);
  // The flow rule fires on window 0 and stays firing.
  EXPECT_TRUE(monitor.AnyFiring());
  EXPECT_GE(monitor.FiringCount(), 1);
  // The p-hat step at window 10 was detected...
  bool detected = false;
  for (const DriftEvent& e : monitor.drift_log()) {
    detected |= e.detector == "p_hat" && e.state == "detected";
  }
  EXPECT_TRUE(detected);
  // ...and the drift_active rule saw it fire (transition in the log).
  bool drift_rule_fired = false;
  for (const AlertEvent& e : monitor.alert_log()) {
    drift_rule_fired |= e.rule == "drift" && e.state == "firing";
  }
  EXPECT_TRUE(drift_rule_fired);
}

TEST(HealthMonitorTest, RenderingsAreDeterministicAndValid) {
  auto run = [] {
    HealthMonitor monitor(MonitorRules(), HealthOptions{});
    for (const TimeSeriesWindow& w : DriftingSequence()) {
      monitor.OnWindow(w);
    }
    return std::pair<std::string, std::string>(monitor.RenderText(),
                                               monitor.RenderJson());
  };
  auto [text1, json1] = run();
  auto [text2, json2] = run();
  EXPECT_EQ(text1, text2);
  EXPECT_EQ(json1, json2);
  EXPECT_TRUE(obs::IsValidJson(json1));
  EXPECT_NE(json1.find("\"schema\":\"stratlearn-health-v1\""),
            std::string::npos);
}

TEST(HealthMonitorTest, ForwardsTransitionsToEventSink) {
  std::ostringstream out;
  obs::JsonlSink sink(&out);
  HealthMonitor monitor(MonitorRules(), HealthOptions{});
  monitor.set_event_sink(&sink);
  for (const TimeSeriesWindow& w : DriftingSequence()) monitor.OnWindow(w);
  sink.Flush();
  EXPECT_NE(out.str().find("\"type\":\"drift\""), std::string::npos);
  EXPECT_NE(out.str().find("\"type\":\"alert\""), std::string::npos);
}

// ------------------------------------------------------------- series IO

TEST(SeriesIoTest, OfflineReplayReproducesOnlineReport) {
  // Online: a collector feeds the monitor live; the serialized series
  // is what --timeseries-out would have written.
  MetricsRegistry registry;
  obs::Counter& c = registry.GetCounter("qp.queries");
  TimeSeriesCollector collector(&registry, {.interval_us = 100});
  HealthMonitor online(MonitorRules(), HealthOptions{});
  collector.SetWindowCallback(
      [&online](const TimeSeriesWindow& w) { online.OnWindow(w); });
  Rng rng(7);
  for (int64_t i = 0; i < 12; ++i) {
    c.Increment(50);
    for (int64_t a = 0; a < 60; ++a) {
      obs::ArcAttemptEvent e;
      e.arc = 0;
      e.unblocked = rng.NextBernoulli(i < 8 ? 0.8 : 0.2);
      e.cost = 1.0;
      collector.OnArcAttempt(e);
    }
    collector.AdvanceTo((i + 1) * 100);
  }
  std::string serialized = collector.SerializeJsonl();

  // Offline: parse the file back and replay through a fresh monitor.
  std::istringstream in(serialized);
  obs::health::LoadedSeries series;
  ASSERT_TRUE(obs::health::LoadTimeSeries(in, &series).ok());
  EXPECT_EQ(series.interval_us, 100);
  EXPECT_EQ(series.windows.size(), 12u);
  HealthMonitor offline(MonitorRules(), HealthOptions{});
  for (const TimeSeriesWindow& w : series.windows) offline.OnWindow(w);

  // Byte-identical decisions and reports: the acceptance criterion.
  EXPECT_EQ(online.RenderJson(), offline.RenderJson());
  EXPECT_EQ(online.RenderText(), offline.RenderText());
  EXPECT_EQ(online.drift_log().size(), offline.drift_log().size());
}

TEST(SeriesIoTest, LoadedWindowsMatchCollectorState) {
  MetricsRegistry registry;
  registry.GetCounter("qp.queries").Increment(42);
  TimeSeriesCollector collector(&registry, {.interval_us = 100});
  obs::ArcAttemptEvent e;
  e.arc = 3;
  e.unblocked = true;
  e.cost = 2.5;
  collector.OnArcAttempt(e);
  collector.AdvanceTo(100);

  std::istringstream in(collector.SerializeJsonl());
  obs::health::LoadedSeries series;
  ASSERT_TRUE(obs::health::LoadTimeSeries(in, &series).ok());
  ASSERT_EQ(series.windows.size(), 1u);
  const TimeSeriesWindow& w = series.windows[0];
  EXPECT_EQ(w.index, 0);
  EXPECT_EQ(w.start_us, 0);
  EXPECT_EQ(w.end_us, 100);
  EXPECT_EQ(w.counter_deltas.at("qp.queries"), 42);
  ASSERT_EQ(w.arcs.size(), 1u);
  EXPECT_EQ(w.arcs[0].arc, 3u);
  EXPECT_EQ(w.arcs[0].attempts, 1);
  EXPECT_DOUBLE_EQ(w.arcs[0].MeanCost(), 2.5);
}

TEST(SeriesIoTest, RejectsMalformedInput) {
  obs::health::LoadedSeries series;
  std::istringstream missing_header("{\"window\":0}\n");
  EXPECT_FALSE(obs::health::LoadTimeSeries(missing_header, &series).ok());
  std::istringstream bad_schema(
      "{\"schema\":\"not-a-series\",\"interval_us\":100}\n");
  EXPECT_FALSE(obs::health::LoadTimeSeries(bad_schema, &series).ok());
  std::istringstream not_json(
      "{\"schema\":\"stratlearn-timeseries-v1\",\"interval_us\":100}\n"
      "not json\n");
  EXPECT_FALSE(obs::health::LoadTimeSeries(not_json, &series).ok());
}

// ----------------------------------------------------------- trace replay

TEST(TraceReplayTest, DriftAndAlertEventsRoundTripByteIdentical) {
  DriftEvent d;
  d.t_us = 1100;
  d.detector = "p_hat";
  d.state = "detected";
  d.arc = 2;
  d.statistic = 0.21;
  d.reference = 0.8125;
  d.threshold = 0.2628;
  d.window = 10;
  d.window_start_us = 1000;
  d.window_end_us = 1100;
  DriftEvent r;
  r.t_us = 1200;
  r.detector = "rate";
  r.state = "cleared";
  r.counter = "robust.faults";
  r.statistic = 1.0;
  r.reference = 0.25;
  r.threshold = 8.0;
  r.window = 11;
  r.window_start_us = 1100;
  r.window_end_us = 1200;
  AlertEvent a;
  a.t_us = 1100;
  a.rule = "degraded";
  a.state = "firing";
  a.severity = "critical";
  a.metric = "counter_delta:robust.degraded";
  a.value = 17.0;
  a.threshold = 0.0;
  a.window = 10;
  a.for_windows = 2;

  std::ostringstream first;
  {
    obs::JsonlSink sink(&first);
    sink.OnDrift(d);
    sink.OnAlert(a);
    sink.OnDrift(r);
    sink.Flush();
  }
  // Replay the written trace through the reader into a second sink: the
  // re-rendered bytes must match exactly (field set, order, precision).
  std::ostringstream second;
  obs::JsonlSink resink(&second);
  obs::TraceReader reader(&resink);
  std::istringstream in(first.str());
  ASSERT_TRUE(reader.ReplayStream(in).ok());
  resink.Flush();
  EXPECT_EQ(reader.events(), 3);
  EXPECT_EQ(reader.skipped(), 0);
  EXPECT_EQ(first.str(), second.str());
}

// -------------------------------------------------------- drifting oracle

TEST(DriftingOracleTest, StepChangeSwitchesRegimes) {
  // Degenerate probabilities make the draws deterministic, so the
  // regime switch is observable without statistics.
  DriftingOracle oracle({1.0, 0.0}, {0.0, 1.0}, /*drift_at=*/5);
  Rng rng(1);
  for (int64_t i = 0; i < 5; ++i) {
    Context c = oracle.Next(rng);
    EXPECT_TRUE(c.Unblocked(0)) << "draw " << i;
    EXPECT_FALSE(c.Unblocked(1)) << "draw " << i;
  }
  for (int64_t i = 5; i < 10; ++i) {
    Context c = oracle.Next(rng);
    EXPECT_FALSE(c.Unblocked(0)) << "draw " << i;
    EXPECT_TRUE(c.Unblocked(1)) << "draw " << i;
  }
  EXPECT_EQ(oracle.draws(), 10);
  EXPECT_EQ(oracle.num_experiments(), 2u);
}

TEST(DriftingOracleTest, ProbsAtInterpolatesOverRamp) {
  DriftingOracle oracle({0.8}, {0.2}, /*drift_at=*/10, /*ramp_len=*/4);
  EXPECT_DOUBLE_EQ(oracle.ProbsAt(0)[0], 0.8);
  EXPECT_DOUBLE_EQ(oracle.ProbsAt(9)[0], 0.8);
  // Ramp draws move monotonically from before to after...
  double prev = 0.8;
  for (int64_t draw = 10; draw < 14; ++draw) {
    double p = oracle.ProbsAt(draw)[0];
    EXPECT_LT(p, prev) << "draw " << draw;
    EXPECT_GT(p, 0.2 - 1e-12) << "draw " << draw;
    prev = p;
  }
  // ...and the post-ramp regime is exactly `after`.
  EXPECT_DOUBLE_EQ(oracle.ProbsAt(14)[0], 0.2);
  EXPECT_DOUBLE_EQ(oracle.ProbsAt(1000)[0], 0.2);
}

TEST(DriftingOracleTest, StepIsSpecialCaseOfZeroRamp) {
  DriftingOracle step({0.9}, {0.1}, /*drift_at=*/3);
  EXPECT_DOUBLE_EQ(step.ProbsAt(2)[0], 0.9);
  EXPECT_DOUBLE_EQ(step.ProbsAt(3)[0], 0.1);
}

}  // namespace
}  // namespace stratlearn
