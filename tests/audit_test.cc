// Tests for the decision-audit layer (src/obs/audit): the AuditLog
// certificate writer, the reader's structural checks, full-precision
// round-trips, the delta-budget ledger discipline across seeds, the
// audit_every subsampling contract, and the V-AUD verify passes.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pao.h"
#include "core/pib.h"
#include "core/pib1.h"
#include "engine/query_processor.h"
#include "obs/audit/audit_log.h"
#include "obs/audit/audit_reader.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "util/rng.h"
#include "verify/diagnostics.h"
#include "verify/verify.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

using obs::AuditFile;
using obs::AuditLog;
using obs::AuditLogOptions;
using obs::DecisionCertificateEvent;

Result<AuditFile> Parse(const std::string& text) {
  std::istringstream in(text);
  return obs::ReadAuditLog(in);
}

DecisionCertificateEvent MakeCert(double delta_step, double spent) {
  DecisionCertificateEvent e;
  e.t_us = 1;
  e.learner = "pib";
  e.decision = "climb";
  e.verdict = "reject";
  e.at_context = 10;
  e.samples = 10;
  e.trials = 10;
  e.subject = 0;
  e.mean = -0.5;
  e.delta_sum = -5.0;
  e.threshold = 3.0;
  e.margin = -8.0;
  e.range = 4.0;
  e.epsilon_n = 1.25;
  e.delta_step = delta_step;
  e.delta_budget = 0.2;
  e.delta_spent_total = spent;
  e.bound_samples = 42;
  e.epsilon = 0.0;
  return e;
}

TEST(AuditLogTest, HeaderCertificateSummaryRoundTrip) {
  std::ostringstream out;
  AuditLogOptions options;
  options.delta_budget = 0.2;
  options.window = 2;
  options.have_baselines = true;
  options.incumbent_expected_cost = 3.8;
  options.oracle_expected_cost = 2.6;
  AuditLog log(&out, options);

  obs::ArcAttemptEvent arc;
  arc.query_index = 0;
  arc.arc = 3;
  arc.experiment = 1;
  arc.unblocked = true;
  arc.cost = 1.5;
  log.OnArcAttempt(arc);
  arc.unblocked = false;
  log.OnArcAttempt(arc);

  // Gnarly doubles must survive the JSONL round-trip bit for bit.
  DecisionCertificateEvent cert = MakeCert(0.1 + 0.02, 1.0 / 7.0);
  cert.mean = 0.1 + 0.2;            // 0.30000000000000004
  cert.threshold = 2.0 / 3.0;
  cert.margin = cert.delta_sum - cert.threshold;
  log.OnDecisionCertificate(cert);

  obs::QueryEndEvent end;
  end.cost = 2.25;
  log.OnQueryEnd(end);
  end.cost = 1.75;
  log.OnQueryEnd(end);  // closes the 2-query window
  log.Close();
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log.certificates_written(), 1);

  Result<AuditFile> parsed = Parse(out.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const AuditFile& file = parsed.value();
  EXPECT_EQ(file.header.window, 2);
  EXPECT_EQ(file.header.delta_budget, 0.2);
  EXPECT_TRUE(file.header.have_baselines);
  EXPECT_EQ(file.header.incumbent_expected_cost, 3.8);

  ASSERT_EQ(file.certificates.size(), 1u);
  const DecisionCertificateEvent& e = file.certificates[0].event;
  EXPECT_EQ(e.learner, "pib");
  EXPECT_EQ(e.mean, 0.1 + 0.2);  // exact bits, not approximate
  EXPECT_EQ(e.delta_step, 0.1 + 0.02);
  EXPECT_EQ(e.delta_spent_total, 1.0 / 7.0);
  EXPECT_EQ(e.threshold, 2.0 / 3.0);
  EXPECT_EQ(e.bound_samples, 42);
  ASSERT_EQ(file.certificates[0].arcs.size(), 1u);
  EXPECT_EQ(file.certificates[0].arcs[0].arc, 3);
  EXPECT_EQ(file.certificates[0].arcs[0].attempts, 2);
  EXPECT_EQ(file.certificates[0].arcs[0].successes, 1);
  EXPECT_EQ(file.certificates[0].arcs[0].cost, 3.0);

  ASSERT_EQ(file.regrets.size(), 1u);
  EXPECT_EQ(file.regrets[0].queries, 2);
  EXPECT_EQ(file.regrets[0].total_cost, 4.0);
  EXPECT_TRUE(file.regrets[0].have_baselines);
  EXPECT_EQ(file.regrets[0].incumbent_total, 3.8 * 2.0);
  EXPECT_EQ(file.regrets[0].regret_vs_incumbent, 4.0 - 3.8 * 2.0);

  ASSERT_TRUE(file.summary.present);
  EXPECT_EQ(file.summary.queries, 2);
  EXPECT_EQ(file.summary.certificates, 1);
  EXPECT_EQ(file.summary.rejects, 1);
  EXPECT_TRUE(file.summary.budget_ok);
}

TEST(AuditReaderTest, RejectsStructuralDamage) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("not-the-magic\n").ok());
  EXPECT_FALSE(Parse("stratlearn-audit v1\n").ok());  // no header
  EXPECT_FALSE(
      Parse("stratlearn-audit v1\n{\"record\":\"header\"}\nnot json\n").ok());
  EXPECT_FALSE(Parse("stratlearn-audit v1\n{\"record\":\"header\"}\n"
                     "{\"record\":\"header\"}\n")
                   .ok());  // duplicate header
  EXPECT_FALSE(Parse("stratlearn-audit v1\n{\"record\":\"header\"}\n"
                     "{\"record\":\"wat\"}\n")
                   .ok());  // unknown record kind
  // Non-contiguous seq: a spliced-out certificate must not parse.
  EXPECT_FALSE(
      Parse("stratlearn-audit v1\n{\"record\":\"header\"}\n"
            "{\"record\":\"certificate\",\"seq\":1,\"learner\":\"pib\","
            "\"decision\":\"climb\",\"verdict\":\"reject\",\"arcs\":[]}\n")
          .ok());
  // Missing summary is fine (crash before Close), flagged via present.
  Result<AuditFile> truncated =
      Parse("stratlearn-audit v1\n{\"record\":\"header\"}\n");
  ASSERT_TRUE(truncated.ok());
  EXPECT_FALSE(truncated.value().summary.present);
}

// A full PIB run with certificates on: the ledger must be the running
// sum of delta_steps, monotone, and within budget — for every seed.
TEST(AuditLedgerTest, PibLedgerStaysWithinBudgetAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    RandomTreeOptions tree_options;
    tree_options.depth = 3;
    tree_options.min_branch = 2;
    tree_options.max_branch = 3;
    RandomTree tree = MakeRandomTree(rng, tree_options);

    std::ostringstream out;
    AuditLogOptions options;
    options.delta_budget = 0.2;
    AuditLog log(&out, options);
    obs::MetricsRegistry registry;
    obs::Observer observer(&registry, &log);
    observer.UseManualClock();
    observer.set_audit_enabled(true);

    Pib pib(&tree.graph, Strategy::DepthFirst(tree.graph),
            PibOptions{.delta = 0.2}, &observer);
    QueryProcessor qp(&tree.graph, &observer);
    IndependentOracle oracle(tree.probs);
    for (int64_t i = 0; i < 500; ++i) {
      pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
      observer.AdvanceManualClock(i + 1);
    }
    log.Close();

    Result<AuditFile> parsed = Parse(out.str());
    ASSERT_TRUE(parsed.ok()) << "seed " << seed;
    const AuditFile& file = parsed.value();
    ASSERT_FALSE(file.certificates.empty()) << "seed " << seed;
    double running = 0.0;
    double last = 0.0;
    for (const obs::AuditCertificate& cert : file.certificates) {
      const DecisionCertificateEvent& e = cert.event;
      running += e.delta_step;
      EXPECT_EQ(e.delta_spent_total, running)
          << "seed " << seed << " cert " << cert.seq;
      EXPECT_GE(e.delta_spent_total, last);
      EXPECT_LE(e.delta_spent_total, e.delta_budget)
          << "seed " << seed << " cert " << cert.seq;
      last = e.delta_spent_total;
    }
    ASSERT_TRUE(file.summary.present);
    EXPECT_TRUE(file.summary.budget_ok) << "seed " << seed;
    EXPECT_EQ(file.summary.certificates,
              static_cast<int64_t>(file.certificates.size()));
  }
}

// audit_every subsamples only the high-volume reject certificates;
// commits are always certified.
TEST(AuditLedgerTest, AuditEverySubsamplesRejectsNotCommits) {
  auto run = [](int64_t every) {
    Rng rng(7);
    RandomTreeOptions tree_options;
    tree_options.depth = 3;
    tree_options.min_branch = 2;
    tree_options.max_branch = 3;
    RandomTree tree = MakeRandomTree(rng, tree_options);
    std::ostringstream out;
    AuditLog log(&out, AuditLogOptions{.delta_budget = 0.2});
    obs::MetricsRegistry registry;
    obs::Observer observer(&registry, &log);
    observer.UseManualClock();
    observer.set_audit_enabled(true);
    observer.set_audit_every(every);
    Pib pib(&tree.graph, Strategy::DepthFirst(tree.graph),
            PibOptions{.delta = 0.2}, &observer);
    QueryProcessor qp(&tree.graph, &observer);
    IndependentOracle oracle(tree.probs);
    for (int64_t i = 0; i < 500; ++i) {
      pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
      observer.AdvanceManualClock(i + 1);
    }
    log.Close();
    Result<AuditFile> parsed = Parse(out.str());
    EXPECT_TRUE(parsed.ok());
    return parsed.value();
  };
  AuditFile full = run(1);
  AuditFile sampled = run(10);
  ASSERT_TRUE(full.summary.present);
  ASSERT_TRUE(sampled.summary.present);
  EXPECT_EQ(full.summary.commits, sampled.summary.commits);
  EXPECT_GT(full.summary.rejects, sampled.summary.rejects);
  EXPECT_GT(sampled.summary.rejects, 0);
  // Subsampling skips the skipped tests' delta in the ledger too, so
  // the sampled ledger must come in under the full one.
  EXPECT_LT(sampled.summary.delta_spent_total,
            full.summary.delta_spent_total);
  EXPECT_TRUE(sampled.summary.budget_ok);
}

// PAO quota certificates: one "met" certificate per experiment, margin
// >= 0, delta/(2n) ledger steps.
TEST(AuditLedgerTest, PaoQuotaCertificates) {
  Rng rng(7);
  RandomTreeOptions tree_options;
  tree_options.depth = 2;
  tree_options.min_branch = 2;
  tree_options.max_branch = 2;
  RandomTree tree = MakeRandomTree(rng, tree_options);
  std::ostringstream out;
  AuditLog log(&out, AuditLogOptions{.delta_budget = 0.2});
  obs::MetricsRegistry registry;
  obs::Observer observer(&registry, &log);
  observer.UseManualClock();
  observer.set_audit_enabled(true);

  IndependentOracle oracle(tree.probs);
  PaoOptions options;
  options.epsilon = 1.0;
  options.delta = 0.2;
  options.mode = PaoOptions::Mode::kTheorem3;
  Result<PaoResult> run = Pao::Run(tree.graph, oracle, rng, options,
                                   &observer);
  ASSERT_TRUE(run.ok()) << run.status().message();
  log.Close();

  Result<AuditFile> parsed = Parse(out.str());
  ASSERT_TRUE(parsed.ok());
  const AuditFile& file = parsed.value();
  size_t experiments = tree.graph.experiments().size();
  ASSERT_EQ(file.certificates.size(), experiments);
  double expected_step = 0.2 / (2.0 * static_cast<double>(experiments));
  for (const obs::AuditCertificate& cert : file.certificates) {
    const DecisionCertificateEvent& e = cert.event;
    EXPECT_EQ(e.learner, "pao");
    EXPECT_EQ(e.decision, "quota");
    EXPECT_EQ(e.verdict, "met");
    EXPECT_GE(e.margin, 0.0);  // samples >= quota at the transition
    EXPECT_EQ(e.delta_step, expected_step);
    EXPECT_EQ(e.threshold, static_cast<double>(e.bound_samples));
  }
  ASSERT_TRUE(file.summary.present);
  EXPECT_EQ(file.summary.quotas_met,
            static_cast<int64_t>(experiments));
  EXPECT_TRUE(file.summary.budget_ok);
}

// PIB_1's single certificate spends the whole budget at once.
TEST(AuditLedgerTest, Pib1SingleCertificate) {
  Rng rng(3);
  RandomTreeOptions tree_options;
  tree_options.depth = 2;
  tree_options.min_branch = 2;
  tree_options.max_branch = 2;
  RandomTree tree = MakeRandomTree(rng, tree_options);
  std::vector<SiblingSwap> swaps = AllSiblingSwaps(tree.graph);
  ASSERT_FALSE(swaps.empty());

  std::ostringstream out;
  AuditLog log(&out, AuditLogOptions{.delta_budget = 0.3});
  obs::MetricsRegistry registry;
  obs::Observer observer(&registry, &log);
  observer.UseManualClock();
  observer.set_audit_enabled(true);

  // Drive the one-shot filter toward a switch: feed it traces from an
  // oracle that favours the alternative until it fires (or give up).
  Strategy initial = Strategy::DepthFirst(tree.graph);
  QueryProcessor qp(&tree.graph, &observer);
  bool fired = false;
  for (const SiblingSwap& swap : swaps) {
    Pib1 pib1(&tree.graph, initial, swap, Pib1Options{.delta = 0.3},
              &observer);
    IndependentOracle oracle(tree.probs);
    for (int64_t i = 0; i < 400 && !pib1.ShouldSwitch(); ++i) {
      pib1.Observe(qp.Execute(initial, oracle.Next(rng)));
      observer.AdvanceManualClock(i + 1);
    }
    if (pib1.ShouldSwitch()) {
      fired = true;
      break;
    }
  }
  log.Close();
  Result<AuditFile> parsed = Parse(out.str());
  ASSERT_TRUE(parsed.ok());
  const AuditFile& file = parsed.value();
  if (fired) {
    ASSERT_EQ(file.certificates.size(), 1u);
    const DecisionCertificateEvent& e = file.certificates[0].event;
    EXPECT_EQ(e.learner, "pib1");
    EXPECT_EQ(e.verdict, "stop");
    EXPECT_EQ(e.delta_step, 0.3);
    EXPECT_EQ(e.delta_spent_total, 0.3);
    EXPECT_GE(e.margin, 0.0);
  } else {
    // No swap looked better under this tree: no decision, no spend.
    EXPECT_TRUE(file.certificates.empty());
  }
}

// The V-AUD verify passes: clean streams verify clean; ledger and
// verdict tampering are errors; a missing summary is only a warning.
TEST(VerifyAuditTest, CleanStreamHasNoFindings) {
  std::ostringstream out;
  AuditLog log(&out, AuditLogOptions{.delta_budget = 0.2});
  log.OnDecisionCertificate(MakeCert(0.05, 0.05));
  log.Close();
  verify::DiagnosticSink sink;
  verify::VerifyAuditText(out.str(), &sink);
  EXPECT_EQ(sink.num_errors(), 0u) << out.str();
  EXPECT_EQ(sink.num_warnings(), 0u);
}

TEST(VerifyAuditTest, OverspentLedgerIsAnError) {
  std::ostringstream out;
  AuditLog log(&out, AuditLogOptions{.delta_budget = 0.2});
  DecisionCertificateEvent e = MakeCert(0.25, 0.25);  // > budget 0.2
  log.OnDecisionCertificate(e);
  log.Close();
  verify::DiagnosticSink sink;
  verify::VerifyAuditText(out.str(), &sink);
  EXPECT_GT(sink.num_errors(), 0u);
  bool found = false;
  for (const verify::Diagnostic& d : sink.diagnostics()) {
    if (d.code == "V-AUD002") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(VerifyAuditTest, NonConservativeVerdictIsAnError) {
  std::ostringstream out;
  AuditLog log(&out, AuditLogOptions{.delta_budget = 0.2});
  DecisionCertificateEvent e = MakeCert(0.05, 0.05);
  e.verdict = "commit";  // margin is -8: claims a crossing it never made
  log.OnDecisionCertificate(e);
  log.Close();
  verify::DiagnosticSink sink;
  verify::VerifyAuditText(out.str(), &sink);
  bool found = false;
  for (const verify::Diagnostic& d : sink.diagnostics()) {
    if (d.code == "V-AUD003") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(VerifyAuditTest, MissingSummaryIsAWarning) {
  std::ostringstream out;
  AuditLog log(&out, AuditLogOptions{.delta_budget = 0.2});
  log.OnDecisionCertificate(MakeCert(0.05, 0.05));
  log.Flush();  // no Close: simulates a crash mid-run
  verify::DiagnosticSink sink;
  verify::VerifyAuditText(out.str(), &sink);
  EXPECT_EQ(sink.num_errors(), 0u);
  EXPECT_EQ(sink.num_warnings(), 1u);
}

TEST(VerifyAuditTest, GarbageIsAnError) {
  verify::DiagnosticSink sink;
  verify::VerifyAuditText("stratlearn-audit v1\nnot json at all\n", &sink);
  EXPECT_GT(sink.num_errors(), 0u);
  bool found = false;
  for (const verify::Diagnostic& d : sink.diagnostics()) {
    if (d.code == "V-AUD001") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace stratlearn
