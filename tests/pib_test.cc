#include "core/pib.h"

#include <gtest/gtest.h>

#include "core/expected_cost.h"
#include "core/upsilon.h"
#include "graph/examples.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

/// Runs `pib` on `n` contexts, executing the current strategy each time.
void Drive(Pib& pib, const InferenceGraph& graph, ContextOracle& oracle,
           Rng& rng, int n) {
  QueryProcessor qp(&graph);
  for (int i = 0; i < n; ++i) {
    pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
  }
}

TEST(PibTest, ClimbsToBetterStrategyOnFigureOne) {
  FigureOneGraph g = MakeFigureOne();
  std::vector<double> probs = {0.05, 0.9};  // grad-first is much better
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Pib pib(&g.graph, theta1, {.delta = 0.05});
  IndependentOracle oracle(probs);
  Rng rng(1);
  Drive(pib, g.graph, oracle, rng, 800);
  ASSERT_EQ(pib.moves().size(), 1u);
  EXPECT_EQ(pib.strategy().LeafOrder(g.graph),
            (std::vector<ArcId>{g.d_g, g.d_p}));
  EXPECT_LT(ExactExpectedCost(g.graph, pib.strategy(), probs),
            ExactExpectedCost(g.graph, theta1, probs));
}

TEST(PibTest, StaysPutWhenAlreadyOptimal) {
  FigureOneGraph g = MakeFigureOne();
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Pib pib(&g.graph, theta1, {.delta = 0.05});
  IndependentOracle oracle({0.9, 0.05});
  Rng rng(2);
  Drive(pib, g.graph, oracle, rng, 1000);
  EXPECT_TRUE(pib.moves().empty());
  EXPECT_EQ(pib.strategy(), theta1);
}

TEST(PibTest, FigureTwoClimbsTowardDdFirst) {
  // Section 3.2's motivating scenario: D_a, D_b, D_c fail, D_d succeeds.
  FigureTwoGraph g = MakeFigureTwo();
  std::vector<double> probs = {0.02, 0.02, 0.02, 0.9};
  Strategy theta_abcd = Strategy::DepthFirst(g.graph);
  Pib pib(&g.graph, theta_abcd, {.delta = 0.05});
  IndependentOracle oracle(probs);
  Rng rng(3);
  Drive(pib, g.graph, oracle, rng, 4000);
  EXPECT_GE(pib.moves().size(), 1u);
  // The learned strategy should reach D_d early: among the leaves, D_d
  // must now be first.
  EXPECT_EQ(pib.strategy().LeafOrder(g.graph)[0], g.d_d);
  EXPECT_LT(ExactExpectedCost(g.graph, pib.strategy(), probs),
            ExactExpectedCost(g.graph, theta_abcd, probs));
}

TEST(PibTest, EveryMoveImprovesTrueCost) {
  // Anytime property: each recorded move lowered the true expected cost
  // (this is the Theorem 1 event; with delta = 0.05 a violation over a
  // handful of runs is effectively impossible).
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    RandomTree tree = MakeRandomTree(rng);
    Strategy initial = Strategy::DepthFirst(tree.graph);
    Pib pib(&tree.graph, initial, {.delta = 0.05});
    IndependentOracle oracle(tree.probs);
    QueryProcessor qp(&tree.graph);
    double last_cost = ExactExpectedCost(tree.graph, initial, tree.probs);
    for (int i = 0; i < 600; ++i) {
      if (pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)))) {
        double cost = ExactExpectedCost(tree.graph, pib.strategy(),
                                        tree.probs);
        EXPECT_LT(cost, last_cost + 1e-9) << "trial=" << trial;
        last_cost = cost;
      }
    }
  }
}

TEST(PibTest, TrialCountGrowsByNeighborhoodSize) {
  FigureTwoGraph g = MakeFigureTwo();
  Pib pib(&g.graph, Strategy::DepthFirst(g.graph));
  EXPECT_EQ(pib.num_neighbors(), 3u);
  QueryProcessor qp(&g.graph);
  Context none(4);
  pib.Observe(qp.Execute(pib.strategy(), none));
  EXPECT_EQ(pib.trial_count(), 3);
  pib.Observe(qp.Execute(pib.strategy(), none));
  EXPECT_EQ(pib.trial_count(), 6);
  EXPECT_EQ(pib.contexts_processed(), 2);
}

TEST(PibTest, TestEveryKDefersDecisions) {
  FigureOneGraph g = MakeFigureOne();
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Pib pib(&g.graph, theta1, {.delta = 0.05, .test_every = 50});
  IndependentOracle oracle({0.0, 1.0});
  Rng rng(5);
  QueryProcessor qp(&g.graph);
  int move_at = -1;
  for (int i = 0; i < 200 && move_at < 0; ++i) {
    if (pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)))) {
      move_at = i + 1;
    }
  }
  ASSERT_GT(move_at, 0);
  EXPECT_EQ(move_at % 50, 0);  // decisions only on multiples of k
}

TEST(PibTest, MistakeRateBelowDeltaUnderAdversarialTies) {
  // Equal probabilities: every neighbour has true D = 0, so *any* move
  // is a mistake. Theorem 1: over many independent runs the fraction of
  // runs with at least one move must stay below delta.
  FigureOneGraph g = MakeFigureOne();
  const double delta = 0.1;
  Rng seed_rng(6);
  int runs_with_moves = 0;
  const int runs = 100;
  for (int r = 0; r < runs; ++r) {
    Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
    Pib pib(&g.graph, theta1, {.delta = delta});
    IndependentOracle oracle({0.4, 0.4});
    Rng rng = seed_rng.Fork();
    QueryProcessor qp(&g.graph);
    for (int i = 0; i < 300; ++i) {
      pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
    }
    if (!pib.moves().empty()) ++runs_with_moves;
  }
  EXPECT_LE(static_cast<double>(runs_with_moves) / runs, delta);
}

TEST(PibTest, WorksWithDependentExperiments) {
  // PIB makes no independence assumption: with a mixture oracle whose
  // profiles are exclusive, it still climbs in the right direction.
  FigureOneGraph g = MakeFigureOne();
  // 80% of queries hit grad only, 20% prof only -> grad-first better.
  MixtureOracle oracle({{0.8, {0.0, 1.0}}, {0.2, {1.0, 0.0}}});
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Pib pib(&g.graph, theta1, {.delta = 0.05});
  Rng rng(7);
  Drive(pib, g.graph, oracle, rng, 1500);
  EXPECT_EQ(pib.strategy().LeafOrder(g.graph),
            (std::vector<ArcId>{g.d_g, g.d_p}));
}

TEST(PibTest, CustomTransformationSetRestrictsMoves) {
  FigureTwoGraph g = MakeFigureTwo();
  // Only allow the (R_tc, R_td) swap.
  std::vector<SiblingSwap> only_cd = {
      {g.graph.arc(g.r_tc).from, g.r_tc, g.r_td}};
  Pib pib(&g.graph, Strategy::DepthFirst(g.graph), only_cd, {.delta = 0.05});
  EXPECT_EQ(pib.num_neighbors(), 1u);
  IndependentOracle oracle({0.0, 0.0, 0.0, 0.95});
  Rng rng(8);
  Drive(pib, g.graph, oracle, rng, 2000);
  // The D subtree can only move ahead of C, nothing else.
  EXPECT_EQ(pib.strategy().LeafOrder(g.graph),
            (std::vector<ArcId>{g.d_a, g.d_b, g.d_d, g.d_c}));
}

TEST(PibTest, ImprovesButStaysAboveGlobalOptimumOnRandomTrees) {
  // PIB's sibling-swap moves keep each subtree's leaves contiguous, so
  // (as the paper's conclusions note) it can only reach a local optimum
  // of its transformation space — Upsilon's interleaved optimum is a
  // lower bound, not a target. The anytime guarantee we check: the
  // learned strategy is never worse than the initial one, and across the
  // trials PIB actually moves.
  Rng rng(9);
  double total_initial = 0.0, total_final = 0.0, total_opt = 0.0;
  size_t total_moves = 0;
  for (int trial = 0; trial < 5; ++trial) {
    RandomTree tree = MakeRandomTree(rng);
    Strategy initial = Strategy::DepthFirst(tree.graph);
    Pib pib(&tree.graph, initial, {.delta = 0.1});
    IndependentOracle oracle(tree.probs);
    QueryProcessor qp(&tree.graph);
    for (int i = 0; i < 6000; ++i) {
      pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
    }
    Result<UpsilonResult> opt = UpsilonAot(tree.graph, tree.probs);
    ASSERT_TRUE(opt.ok());
    total_initial += ExactExpectedCost(tree.graph, initial, tree.probs);
    total_final += ExactExpectedCost(tree.graph, pib.strategy(), tree.probs);
    total_opt += opt->expected_cost;
    total_moves += pib.moves().size();
  }
  EXPECT_LE(total_final, total_initial + 1e-9);
  EXPECT_GE(total_final, total_opt - 1e-9);  // optimum lower-bounds PIB
  EXPECT_GE(total_moves, 1u);
}

}  // namespace
}  // namespace stratlearn
