#include "core/smith.h"

#include <gtest/gtest.h>

#include "core/expected_cost.h"
#include "core/upsilon.h"
#include "datalog/parser.h"
#include "util/string_util.h"
#include "workload/datalog_oracle.h"

namespace stratlearn {
namespace {

class SmithTest : public ::testing::Test {
 protected:
  /// Loads the Section 2 DB_2 scenario: 2000 prof facts, 500 grad facts.
  void LoadDbTwo() {
    ASSERT_TRUE(parser_
                    .LoadProgram(
                        "instructor(X) :- prof(X)."
                        "instructor(X) :- grad(X).",
                        &db_, &rules_)
                    .ok());
    SymbolId prof = symbols_.Intern("prof");
    SymbolId grad = symbols_.Intern("grad");
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(
          db_.Insert(prof, {symbols_.Intern(StrFormat("prof%d", i))}).ok());
    }
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(
          db_.Insert(grad, {symbols_.Intern(StrFormat("grad%d", i))}).ok());
    }
    Result<QueryForm> form = QueryForm::Parse("instructor(b)", &symbols_);
    ASSERT_TRUE(form.ok());
    Result<BuiltGraph> built = BuildInferenceGraph(rules_, *form, &symbols_);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    built_ = std::make_unique<BuiltGraph>(std::move(*built));
  }

  SymbolTable symbols_;
  Parser parser_{&symbols_};
  Database db_;
  RuleBase rules_;
  std::unique_ptr<BuiltGraph> built_;
};

TEST_F(SmithTest, FactCountRatiosMatchPaper) {
  LoadDbTwo();
  // With the default normaliser (max count), prof -> 1.0, grad -> 0.25:
  // the paper's 4x likelihood ratio.
  std::vector<double> est = SmithFactCountEstimates(*built_, db_);
  ASSERT_EQ(est.size(), 2u);
  EXPECT_DOUBLE_EQ(est[0] / est[1], 4.0);
  EXPECT_DOUBLE_EQ(est[0], 1.0);
  EXPECT_DOUBLE_EQ(est[1], 0.25);
}

TEST_F(SmithTest, ExplicitUniverseNormalisation) {
  LoadDbTwo();
  std::vector<double> est = SmithFactCountEstimates(*built_, db_, 10000);
  EXPECT_DOUBLE_EQ(est[0], 0.2);
  EXPECT_DOUBLE_EQ(est[1], 0.05);
}

TEST_F(SmithTest, SmithPicksProfFirstRegardlessOfWorkload) {
  LoadDbTwo();
  std::vector<double> est = SmithFactCountEstimates(*built_, db_);
  Result<UpsilonResult> smith = UpsilonAot(built_->graph, est);
  ASSERT_TRUE(smith.ok());
  // Smith's strategy tries prof before grad (its leaf visits prof first).
  std::vector<ArcId> order = smith->strategy.LeafOrder(built_->graph);
  ASSERT_EQ(order.size(), 2u);
  auto pred_of = [&](ArcId arc) {
    return symbols_.Name(built_->retrievals.at(arc).predicate);
  };
  EXPECT_EQ(pred_of(order[0]), "prof");
  EXPECT_EQ(pred_of(order[1]), "grad");
}

TEST_F(SmithTest, MinorsWorkloadMakesSmithSuboptimal) {
  // Section 2's punchline: a query stream about minors (grads only) makes
  // the fact-count strategy strictly worse than the true optimum.
  LoadDbTwo();
  QueryWorkload workload;
  // Every query is about a grad student; prof retrievals always fail.
  for (int i = 0; i < 10; ++i) {
    workload.entries.push_back(
        {{symbols_.Intern(StrFormat("grad%d", i))}, 1.0});
  }
  DatalogOracle oracle(built_.get(), &db_, workload);
  std::vector<double> truth = oracle.TrueMarginalProbs();
  EXPECT_DOUBLE_EQ(truth[0], 0.0);  // prof never succeeds
  EXPECT_DOUBLE_EQ(truth[1], 1.0);  // grad always succeeds

  std::vector<double> smith_est = SmithFactCountEstimates(*built_, db_);
  Result<UpsilonResult> smith = UpsilonAot(built_->graph, smith_est);
  Result<UpsilonResult> optimal = UpsilonAot(built_->graph, truth);
  ASSERT_TRUE(smith.ok());
  ASSERT_TRUE(optimal.ok());
  double smith_cost =
      ExactExpectedCost(built_->graph, smith->strategy, truth);
  double optimal_cost =
      ExactExpectedCost(built_->graph, optimal->strategy, truth);
  EXPECT_DOUBLE_EQ(smith_cost, 4.0);    // always tries prof first in vain
  EXPECT_DOUBLE_EQ(optimal_cost, 2.0);  // straight to grad
  EXPECT_GT(smith_cost, optimal_cost);
}

TEST_F(SmithTest, GuardExperimentsGetNeutralEstimate) {
  ASSERT_TRUE(parser_
                  .LoadProgram(
                      "grad(X) :- enrolled(X)."
                      "grad(fred) :- admitted(fred, Y).",
                      &db_, &rules_)
                  .ok());
  Result<QueryForm> form = QueryForm::Parse("grad(b)", &symbols_);
  ASSERT_TRUE(form.ok());
  Result<BuiltGraph> built = BuildInferenceGraph(rules_, *form, &symbols_);
  ASSERT_TRUE(built.ok());
  std::vector<double> est = SmithFactCountEstimates(*built, db_);
  ArcId guard_arc = built->guards.begin()->first;
  int guard_exp = built->graph.ExperimentIndex(guard_arc);
  EXPECT_DOUBLE_EQ(est[guard_exp], 0.5);
}

}  // namespace
}  // namespace stratlearn
