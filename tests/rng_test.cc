#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace stratlearn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, DoubleMeanIsHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) total += rng.NextDouble();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, DiscreterespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextDiscrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // probability ~1/50! of flaking
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(37);
  Rng b = a.Fork();
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, UniformRange) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextUniform(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
  }
}

}  // namespace
}  // namespace stratlearn
