#include "util/file_util.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace stratlearn {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  // One flipped bit changes the checksum.
  EXPECT_NE(Crc32("123456789"), Crc32("123456788"));
}

TEST(ChecksummedFileTest, WriteReadRoundTrip) {
  std::string path = ::testing::TempDir() + "/file_util_roundtrip";
  std::string payload = "stratlearn-checkpoint v1\nlearner pib\nrng 1 2 3 4\n";
  ASSERT_TRUE(WriteFileChecksummed(path, payload));
  Result<std::string> read = ReadFileChecksummed(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);
}

TEST(ChecksummedFileTest, MissingFileIsNotFound) {
  Result<std::string> read =
      ReadFileChecksummed(::testing::TempDir() + "/file_util_nope");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(ChecksummedFileTest, TruncationIsDetected) {
  std::string path = ::testing::TempDir() + "/file_util_truncated";
  ASSERT_TRUE(WriteFileChecksummed(path, "a payload worth keeping\n"));
  std::string contents = ReadAll(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents.substr(0, contents.size() - 5);
  }
  Result<std::string> read = ReadFileChecksummed(path);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().ToString().find("truncated"), std::string::npos);
}

TEST(ChecksummedFileTest, BitFlipIsDetected) {
  std::string path = ::testing::TempDir() + "/file_util_flipped";
  ASSERT_TRUE(WriteFileChecksummed(path, "a payload worth keeping\n"));
  std::string contents = ReadAll(path);
  contents[contents.size() - 3] ^= 0x01;  // flip one payload bit
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }
  Result<std::string> read = ReadFileChecksummed(path);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().ToString().find("CRC-32"), std::string::npos);
}

TEST(ChecksummedFileTest, ForeignFileHasNoHeader) {
  Result<std::string> decoded =
      DecodeChecksummed("just some text\n", "foreign");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("header"), std::string::npos);
}

TEST(ChecksummedFileTest, MalformedHeaderIsRejected) {
  EXPECT_FALSE(DecodeChecksummed("stratlearn-crc32 zz\npayload", "x").ok());
  EXPECT_FALSE(
      DecodeChecksummed("stratlearn-crc32 0badf00d xyz\npayload", "x").ok());
}

TEST(AtomicWriteTest, LeavesNoTempFileBehind) {
  std::string path = ::testing::TempDir() + "/file_util_atomic";
  ASSERT_TRUE(WriteFileAtomic(path, "contents"));
  EXPECT_EQ(ReadAll(path), "contents");
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

}  // namespace
}  // namespace stratlearn
