#include <gtest/gtest.h>

#include "core/palo.h"
#include "core/pib.h"
#include "engine/query_processor.h"
#include "graph/examples.h"
#include "robust/checkpoint.h"
#include "robust/fault_injector.h"
#include "robust/fault_plan.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/faulty_oracle.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

using robust::CheckpointData;
using robust::FaultInjector;
using robust::FaultInjectorState;
using robust::FaultKind;
using robust::FaultPlan;
using robust::FaultRule;

// ---- Fault plans ---------------------------------------------------------

TEST(FaultPlanTest, ParseSerializeRoundTrip) {
  Result<FaultPlan> plan = FaultPlan::Parse(
      "stratlearn-faultplan v1\n"
      "seed 42\n"
      "retries 2          # comment\n"
      "backoff 0.5 2.0 4.0\n"
      "budget 12.5\n"
      "breaker 3 16\n"
      "fault transient 0.05 -1\n"
      "fault timeout 0.01 2 4.0\n");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 42u);
  EXPECT_EQ(plan->resilience.max_retries, 2);
  EXPECT_DOUBLE_EQ(plan->resilience.backoff_base, 0.5);
  EXPECT_DOUBLE_EQ(plan->resilience.cost_budget, 12.5);
  EXPECT_EQ(plan->resilience.breaker_threshold, 3);
  EXPECT_EQ(plan->resilience.breaker_cooldown, 16);
  ASSERT_EQ(plan->rules.size(), 2u);
  EXPECT_EQ(plan->rules[0].kind, FaultKind::kTransient);
  EXPECT_EQ(plan->rules[0].experiment, -1);
  EXPECT_EQ(plan->rules[1].kind, FaultKind::kTimeout);
  EXPECT_DOUBLE_EQ(plan->rules[1].magnitude, 4.0);
  EXPECT_FALSE(plan->ZeroFault());

  // Serialize -> Parse is the identity (up to formatting).
  Result<FaultPlan> again = FaultPlan::Parse(plan->Serialize());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->Serialize(), plan->Serialize());
}

TEST(FaultPlanTest, RejectsMalformedPlans) {
  EXPECT_FALSE(FaultPlan::Parse("seed 1\n").ok());  // no header
  EXPECT_FALSE(FaultPlan::Parse(
                   "stratlearn-faultplan v1\nfault sparkle 0.1 -1\n")
                   .ok());
  EXPECT_FALSE(FaultPlan::Parse(
                   "stratlearn-faultplan v1\nfault transient 1.5 -1\n")
                   .ok());
  EXPECT_FALSE(FaultPlan::Parse(
                   "stratlearn-faultplan v1\nfault timeout 0.1 -1 0.5\n")
                   .ok());
  EXPECT_FALSE(
      FaultPlan::Parse("stratlearn-faultplan v1\nbreaker 1 0\n").ok());
  EXPECT_FALSE(
      FaultPlan::Parse("stratlearn-faultplan v1\nflux 3\n").ok());
}

TEST(FaultPlanTest, ZeroFaultDetection) {
  FaultPlan plan;
  EXPECT_TRUE(plan.ZeroFault());
  plan.rules.push_back({FaultKind::kTransient, 0.0, -1, 1.0});
  EXPECT_TRUE(plan.ZeroFault());
  plan.rules.push_back({FaultKind::kCorrupt, 0.001, 0, 1.0});
  EXPECT_FALSE(plan.ZeroFault());
}

// ---- Fault injector ------------------------------------------------------

FaultPlan TransientPlan(double probability, int experiment = -1) {
  FaultPlan plan;
  plan.seed = 42;
  plan.rules.push_back({FaultKind::kTransient, probability, experiment, 1.0});
  return plan;
}

TEST(FaultInjectorTest, SameSeedSameFaultStream) {
  FaultInjector a(TransientPlan(0.5));
  FaultInjector b(TransientPlan(0.5));
  for (int i = 0; i < 200; ++i) {
    double ma = 1.0, mb = 1.0;
    EXPECT_EQ(a.SampleFault(i % 4, &ma), b.SampleFault(i % 4, &mb));
    EXPECT_DOUBLE_EQ(ma, mb);
  }
}

TEST(FaultInjectorTest, SaveRestoreContinuesTheStream) {
  FaultPlan plan = TransientPlan(0.5);
  plan.resilience.breaker_threshold = 2;
  FaultInjector a(plan);
  double magnitude = 1.0;
  for (int i = 0; i < 50; ++i) {
    a.BeginQuery();
    a.SampleFault(0, &magnitude);
  }
  a.RecordInfraFailure(3, 7);
  FaultInjectorState saved = a.SaveState();
  ASSERT_EQ(saved.breakers.size(), 1u);

  FaultInjector b(plan);
  ASSERT_TRUE(b.RestoreState(saved).ok());
  EXPECT_EQ(b.BeginQuery(), a.BeginQuery());
  EXPECT_EQ(b.BreakerLedger(3).consecutive_failures, 1);
  for (int i = 0; i < 100; ++i) {
    double ma = 1.0, mb = 1.0;
    EXPECT_EQ(a.SampleFault(i % 4, &ma), b.SampleFault(i % 4, &mb));
  }
}

TEST(FaultInjectorTest, RestoreRejectsGarbage) {
  FaultInjector injector(TransientPlan(0.5));
  FaultInjectorState state = injector.SaveState();
  state.query_count = -1;
  EXPECT_FALSE(injector.RestoreState(state).ok());

  state = injector.SaveState();
  state.breakers.push_back({kInvalidArc, 1, 0});
  EXPECT_FALSE(injector.RestoreState(state).ok());
}

TEST(FaultInjectorTest, BreakerOpensSkipsAndCloses) {
  FaultPlan plan = TransientPlan(0.5);
  plan.resilience.breaker_threshold = 2;
  plan.resilience.breaker_cooldown = 3;
  FaultInjector injector(plan);

  // Threshold 2: the first exhausted-retries failure arms, the second
  // opens.
  EXPECT_FALSE(injector.RecordInfraFailure(5, 0));
  EXPECT_FALSE(injector.BreakerOpen(5, 1));
  EXPECT_TRUE(injector.RecordInfraFailure(5, 1));
  // Cooldown 3 starting at query 1: queries 2..4 skip, 5 gets a trial.
  EXPECT_TRUE(injector.BreakerOpen(5, 2));
  EXPECT_TRUE(injector.BreakerOpen(5, 4));
  EXPECT_FALSE(injector.BreakerOpen(5, 5));
  // A fault-free attempt closes the breaker and resets the ledger.
  EXPECT_TRUE(injector.RecordRecovery(5));
  EXPECT_FALSE(injector.RecordRecovery(5));
  EXPECT_EQ(injector.BreakerLedger(5).consecutive_failures, 0);
}

// ---- Resilient execution -------------------------------------------------

TEST(ResilientExecutionTest, ZeroFaultPlanIsBitIdentical) {
  FigureTwoGraph g = MakeFigureTwo();
  Strategy theta = Strategy::DepthFirst(g.graph);
  QueryProcessor plain(&g.graph);
  QueryProcessor resilient(&g.graph);
  FaultPlan plan = TransientPlan(0.0);
  plan.resilience.breaker_threshold = 4;
  FaultInjector injector(plan);
  resilient.set_fault_injector(&injector);

  for (uint64_t mask = 0; mask < 16; ++mask) {
    Context ctx = Context::FromMask(4, mask);
    Trace a = plain.Execute(theta, ctx);
    Trace b = resilient.Execute(theta, ctx);
    EXPECT_DOUBLE_EQ(a.cost, b.cost);
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.first_success_arc, b.first_success_arc);
    EXPECT_TRUE(b.resolved);
    ASSERT_EQ(a.attempts.size(), b.attempts.size());
    for (size_t i = 0; i < a.attempts.size(); ++i) {
      EXPECT_EQ(a.attempts[i].arc, b.attempts[i].arc);
      EXPECT_EQ(a.attempts[i].unblocked, b.attempts[i].unblocked);
      EXPECT_EQ(a.attempts[i].infra_failure, b.attempts[i].infra_failure);
      EXPECT_DOUBLE_EQ(a.attempts[i].cost, b.attempts[i].cost);
    }
  }
}

TEST(ResilientExecutionTest, ExhaustedRetriesChargeBackoffAndFailureCost) {
  FigureOneGraph g = MakeFigureOne();
  // Every attempt of experiment 0 (D_p) fails; 2 retries with backoff
  // 0.5, 1.0 (base 0.5, multiplier 2, generous cap).
  FaultPlan plan = TransientPlan(1.0, /*experiment=*/0);
  plan.resilience.max_retries = 2;
  plan.resilience.backoff_base = 0.5;
  plan.resilience.backoff_multiplier = 2.0;
  plan.resilience.backoff_cap = 10.0;
  FaultInjector injector(plan);
  QueryProcessor qp(&g.graph);
  qp.set_fault_injector(&injector);

  Strategy theta = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Context ctx(2);
  ctx.Set(0, true);  // ground truth says unblocked — the learner never
  ctx.Set(1, true);  // sees it through the failing transport
  Trace t = qp.Execute(theta, ctx);

  const Arc& dp = g.graph.arc(g.d_p);
  double expected_dp =
      3 * dp.cost + 0.5 + 1.0 + dp.failure_cost;  // 3 attempts + backoffs
  ASSERT_EQ(t.attempts.size(), 4u);  // r_p, d_p, r_g, d_g
  EXPECT_EQ(t.attempts[1].arc, g.d_p);
  EXPECT_FALSE(t.attempts[1].unblocked);
  EXPECT_TRUE(t.attempts[1].infra_failure);
  EXPECT_DOUBLE_EQ(t.attempts[1].cost, expected_dp);
  // The search fell through to D_g and still answered the query.
  EXPECT_TRUE(t.success);
  EXPECT_EQ(t.first_success_arc, g.d_g);
  EXPECT_TRUE(t.resolved);
}

TEST(ResilientExecutionTest, BudgetDegradesToUnresolved) {
  FigureOneGraph g = MakeFigureOne();
  FaultPlan plan = TransientPlan(0.0);
  plan.resilience.cost_budget = 1.5;
  FaultInjector injector(plan);
  QueryProcessor qp(&g.graph);
  qp.set_fault_injector(&injector);

  Strategy theta = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Context none(2);  // both blocked: the full search would cost 4
  Trace t = qp.Execute(theta, none);
  EXPECT_FALSE(t.resolved);
  EXPECT_FALSE(t.success);
  EXPECT_EQ(t.attempts.size(), 2u);  // stopped once cost >= 1.5
}

TEST(ResilientExecutionTest, OpenBreakerSkipsAtPessimisticCost) {
  FigureOneGraph g = MakeFigureOne();
  FaultPlan plan = TransientPlan(1.0, /*experiment=*/0);
  plan.resilience.max_retries = 0;
  plan.resilience.backoff_base = 0.0;
  plan.resilience.breaker_threshold = 1;
  plan.resilience.breaker_cooldown = 8;
  FaultInjector injector(plan);
  QueryProcessor qp(&g.graph);
  qp.set_fault_injector(&injector);

  Strategy theta = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Context ctx(2);
  ctx.Set(0, true);
  ctx.Set(1, true);

  // Query 0 exhausts retries and opens the breaker...
  Trace first = qp.Execute(theta, ctx);
  EXPECT_TRUE(first.attempts[1].infra_failure);
  // ...so query 1 skips D_p outright at cost + failure_cost, with no
  // retries drawn from the fault stream.
  const Arc& dp = g.graph.arc(g.d_p);
  Trace second = qp.Execute(theta, ctx);
  EXPECT_EQ(second.attempts[1].arc, g.d_p);
  EXPECT_FALSE(second.attempts[1].unblocked);
  EXPECT_TRUE(second.attempts[1].infra_failure);
  EXPECT_DOUBLE_EQ(second.attempts[1].cost, dp.cost + dp.failure_cost);
}

// ---- Checkpoint serialization --------------------------------------------

CheckpointData RunPibFor(const FigureTwoGraph& g, int64_t queries,
                         FaultInjector* injector) {
  IndependentOracle oracle({0.9, 0.2, 0.8, 0.3});
  Pib pib(&g.graph, Strategy::DepthFirst(g.graph),
          PibOptions{.delta = 0.05});
  QueryProcessor qp(&g.graph);
  qp.set_fault_injector(injector);
  Rng rng(7);
  for (int64_t i = 0; i < queries; ++i) {
    pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
  }
  CheckpointData data;
  data.learner = "pib";
  data.seed = 7;
  data.queries_done = queries;
  data.rng_state = rng.SaveState();
  if (injector != nullptr) {
    data.has_injector = true;
    data.injector = injector->SaveState();
  }
  data.pib = pib.GetCheckpoint();
  return data;
}

TEST(CheckpointTest, SerializeParseRoundTrip) {
  FigureTwoGraph g = MakeFigureTwo();
  FaultPlan plan = TransientPlan(0.1);
  plan.resilience.breaker_threshold = 2;
  FaultInjector injector(plan);
  CheckpointData data = RunPibFor(g, 300, &injector);

  std::string text = robust::SerializeCheckpoint(data);
  Result<CheckpointData> parsed = robust::ParseCheckpoint(g.graph, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->learner, "pib");
  EXPECT_EQ(parsed->seed, 7u);
  EXPECT_EQ(parsed->queries_done, 300);
  EXPECT_EQ(parsed->rng_state, data.rng_state);
  EXPECT_TRUE(parsed->has_injector);
  EXPECT_EQ(parsed->injector.query_count, data.injector.query_count);
  EXPECT_EQ(parsed->pib.contexts, data.pib.contexts);
  EXPECT_EQ(parsed->pib.moves.size(), data.pib.moves.size());
  // Full fidelity: re-serialization is byte-identical.
  EXPECT_EQ(robust::SerializeCheckpoint(*parsed), text);
}

TEST(CheckpointTest, ParseRejectsTampering) {
  FigureTwoGraph g = MakeFigureTwo();
  CheckpointData data = RunPibFor(g, 100, nullptr);
  std::string text = robust::SerializeCheckpoint(data);

  EXPECT_FALSE(robust::ParseCheckpoint(g.graph, "not a checkpoint").ok());
  EXPECT_FALSE(
      robust::ParseCheckpoint(g.graph, text + "\ngremlin 1\n").ok());
  EXPECT_FALSE(
      robust::ParseCheckpoint(g.graph, text + "\nbreaker 999 1 1\n").ok());

  // Drop the strategy line: a pib checkpoint without one is invalid.
  std::string no_strategy;
  for (const std::string& line : Split(text, '\n')) {
    if (line.rfind("stratlearn-strategy", 0) == 0) continue;
    no_strategy += line;
    no_strategy += '\n';
  }
  EXPECT_FALSE(robust::ParseCheckpoint(g.graph, no_strategy).ok());
}

TEST(CheckpointTest, WriteLoadRoundTripsThroughDisk) {
  FigureTwoGraph g = MakeFigureTwo();
  CheckpointData data = RunPibFor(g, 100, nullptr);
  std::string path = ::testing::TempDir() + "/robust_test.ckpt";
  ASSERT_TRUE(robust::WriteCheckpoint(path, data).ok());
  Result<CheckpointData> loaded = robust::LoadCheckpoint(path, g.graph);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(robust::SerializeCheckpoint(*loaded),
            robust::SerializeCheckpoint(data));
}

// ---- Kill-and-resume equivalence -----------------------------------------

TEST(KillResumeTest, ResumedPibRunMatchesUninterrupted) {
  FigureTwoGraph g = MakeFigureTwo();
  FaultPlan plan = TransientPlan(0.05);
  plan.resilience.breaker_threshold = 4;

  // Run A: 400 contexts uninterrupted.
  FaultInjector injector_a(plan);
  CheckpointData a = RunPibFor(g, 400, &injector_a);

  // Run B: 200 contexts, checkpoint, "crash", restore into fresh
  // objects, 200 more.
  FaultInjector injector_b(plan);
  CheckpointData half = RunPibFor(g, 200, &injector_b);
  std::string text = robust::SerializeCheckpoint(half);
  Result<CheckpointData> ckpt = robust::ParseCheckpoint(g.graph, text);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();

  IndependentOracle oracle({0.9, 0.2, 0.8, 0.3});
  Pib pib(&g.graph, Strategy::DepthFirst(g.graph),
          PibOptions{.delta = 0.05});
  ASSERT_TRUE(pib.RestoreCheckpoint(ckpt->pib).ok());
  FaultInjector injector_c(plan);
  ASSERT_TRUE(injector_c.RestoreState(ckpt->injector).ok());
  QueryProcessor qp(&g.graph);
  qp.set_fault_injector(&injector_c);
  Rng rng(1);  // seed irrelevant: state is overwritten
  rng.RestoreState(ckpt->rng_state);
  for (int64_t i = ckpt->queries_done; i < 400; ++i) {
    pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
  }

  CheckpointData b;
  b.learner = "pib";
  b.seed = 7;
  b.queries_done = 400;
  b.rng_state = rng.SaveState();
  b.has_injector = true;
  b.injector = injector_c.SaveState();
  b.pib = pib.GetCheckpoint();
  // Same final strategy, climb history, counters, RNG position and
  // breaker ledgers — the resumed run is indistinguishable.
  EXPECT_EQ(robust::SerializeCheckpoint(b), robust::SerializeCheckpoint(a));
}

TEST(KillResumeTest, PaloCheckpointRoundTrips) {
  FigureTwoGraph g = MakeFigureTwo();
  IndependentOracle oracle({0.9, 0.2, 0.8, 0.3});

  auto run = [&](int64_t from, int64_t to, Palo* palo, Rng* rng) {
    QueryProcessor qp(&g.graph);
    for (int64_t i = from; i < to; ++i) {
      palo->Observe(qp.Execute(palo->strategy(), oracle.Next(*rng)));
    }
  };

  PaloOptions options{.delta = 0.05, .epsilon = 0.25};
  Palo a(&g.graph, Strategy::DepthFirst(g.graph), options);
  Rng rng_a(7);
  run(0, 400, &a, &rng_a);

  Palo b1(&g.graph, Strategy::DepthFirst(g.graph), options);
  Rng rng_b(7);
  run(0, 150, &b1, &rng_b);
  Palo b2(&g.graph, Strategy::DepthFirst(g.graph), options);
  ASSERT_TRUE(b2.RestoreCheckpoint(b1.GetCheckpoint()).ok());
  run(150, 400, &b2, &rng_b);

  EXPECT_EQ(a.strategy().Serialize(), b2.strategy().Serialize());
  EXPECT_EQ(a.moves_made(), b2.moves_made());
  EXPECT_EQ(a.Finished(), b2.Finished());
  CheckpointData ca, cb;
  ca.learner = cb.learner = "palo";
  ca.palo = a.GetCheckpoint();
  cb.palo = b2.GetCheckpoint();
  ca.rng_state = cb.rng_state = rng_a.SaveState();
  EXPECT_EQ(robust::SerializeCheckpoint(ca),
            robust::SerializeCheckpoint(cb));
}

TEST(KillResumeTest, RestoreRejectsWrongShape) {
  FigureTwoGraph g = MakeFigureTwo();
  Pib pib(&g.graph, Strategy::DepthFirst(g.graph),
          PibOptions{.delta = 0.05});
  Pib::Checkpoint bad = pib.GetCheckpoint();
  bad.neighbor_delta_sums.push_back(1.0);  // one ledger too many
  EXPECT_FALSE(pib.RestoreCheckpoint(bad).ok());

  bad = pib.GetCheckpoint();
  bad.samples = bad.contexts + 1;  // |S| can never exceed contexts
  EXPECT_FALSE(pib.RestoreCheckpoint(bad).ok());
}

// ---- Half-open probes ----------------------------------------------------

TEST(FaultInjectorTest, HalfOpenProbeClosesOnSuccess) {
  FaultPlan plan = TransientPlan(0.5);
  plan.resilience.breaker_threshold = 2;
  plan.resilience.breaker_cooldown = 3;
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.RecordInfraFailure(5, 0));
  EXPECT_TRUE(injector.RecordInfraFailure(5, 1));  // open until query 5

  EXPECT_EQ(injector.CheckBreaker(5, 4), robust::BreakerDecision::kOpen);
  // Cooldown elapsed: exactly one probe is admitted; a second attempt
  // of the same arc stays skipped while the probe is in flight.
  EXPECT_EQ(injector.CheckBreaker(5, 5),
            robust::BreakerDecision::kHalfOpenProbe);
  EXPECT_EQ(injector.CheckBreaker(5, 5), robust::BreakerDecision::kOpen);
  EXPECT_TRUE(injector.RecordRecovery(5));  // probe succeeded
  EXPECT_EQ(injector.CheckBreaker(5, 6), robust::BreakerDecision::kClosed);
  EXPECT_EQ(injector.BreakerLedger(5).consecutive_failures, 0);
}

TEST(FaultInjectorTest, FailedProbeReopensWithCappedBackoff) {
  FaultPlan plan = TransientPlan(0.5);
  plan.resilience.breaker_threshold = 2;
  plan.resilience.breaker_cooldown = 3;
  plan.resilience.breaker_cooldown_cap = 8;
  FaultInjector injector(plan);
  injector.RecordInfraFailure(5, 0);
  injector.RecordInfraFailure(5, 1);  // open until query 5

  // Each failed probe doubles the cooldown (3 -> 6 -> capped 8).
  EXPECT_EQ(injector.CheckBreaker(5, 5),
            robust::BreakerDecision::kHalfOpenProbe);
  EXPECT_TRUE(injector.RecordInfraFailure(5, 5));
  EXPECT_EQ(injector.BreakerLedger(5).open_rounds, 1);
  EXPECT_EQ(injector.BreakerLedger(5).open_until, 5 + 6 + 1);

  EXPECT_EQ(injector.CheckBreaker(5, 12),
            robust::BreakerDecision::kHalfOpenProbe);
  EXPECT_TRUE(injector.RecordInfraFailure(5, 12));
  EXPECT_EQ(injector.BreakerLedger(5).open_rounds, 2);
  EXPECT_EQ(injector.BreakerLedger(5).open_until, 12 + 8 + 1);

  EXPECT_EQ(injector.CheckBreaker(5, 21),
            robust::BreakerDecision::kHalfOpenProbe);
  EXPECT_TRUE(injector.RecordInfraFailure(5, 21));
  EXPECT_EQ(injector.BreakerLedger(5).open_until, 21 + 8 + 1);  // capped
}

TEST(FaultInjectorTest, QuarantineForcesOpenWithoutThreshold) {
  FaultPlan plan;  // breaker disabled: quarantine must still work
  FaultInjector injector(plan);
  FaultInjectorState::BreakerEntry ledger = injector.Quarantine(3, 10, 5);
  EXPECT_TRUE(ledger.forced);
  EXPECT_EQ(ledger.open_until, 16);
  EXPECT_TRUE(injector.BreakerOpen(3, 15));
  EXPECT_EQ(injector.CheckBreaker(3, 16),
            robust::BreakerDecision::kHalfOpenProbe);
  EXPECT_TRUE(injector.RecordRecovery(3));
  EXPECT_FALSE(injector.BreakerOpen(3, 17));
}

TEST(CheckpointTest, RoundTripsHalfOpenBreakerAndObsState) {
  FigureTwoGraph g = MakeFigureTwo();
  FaultPlan plan = TransientPlan(0.1);
  plan.resilience.breaker_threshold = 2;
  plan.resilience.breaker_cooldown = 3;
  FaultInjector injector(plan);
  // A quarantined arc mid-backoff: the forced bit and the backoff
  // exponent both have to survive the round trip.
  injector.Quarantine(5, 0, 3);
  injector.CheckBreaker(5, 4);
  injector.RecordInfraFailure(5, 4);
  CheckpointData data = RunPibFor(g, 100, &injector);
  data.health.present = true;
  data.health.healthy = false;
  data.health.windows_seen = 12;
  data.health.drift_active = 1;
  data.health.firing = 2;
  data.ring_cursor = 1;
  data.ring_writes = 7;
  data.has_timeseries = true;
  data.ts_window_start = 1100;
  data.ts_next_index = 12;
  data.ts_evicted = 4;
  data.ts_windows = {"{\"index\":10}", "{\"index\":11}"};
  data.has_audit = true;
  data.audit.bytes = 4096;
  data.audit.certificates = 5;
  data.audit.queries = 100;
  data.audit.total_cost = 123.5;

  std::string text = robust::SerializeCheckpoint(data);
  Result<CheckpointData> parsed = robust::ParseCheckpoint(g.graph, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->injector.breakers.size(), 1u);
  EXPECT_TRUE(parsed->injector.breakers[0].forced);
  EXPECT_EQ(parsed->injector.breakers[0].open_rounds, 1);
  EXPECT_TRUE(parsed->health.present);
  EXPECT_FALSE(parsed->health.healthy);
  EXPECT_EQ(parsed->health.windows_seen, 12);
  EXPECT_EQ(parsed->ring_cursor, 1);
  EXPECT_EQ(parsed->ring_writes, 7);
  ASSERT_TRUE(parsed->has_timeseries);
  EXPECT_EQ(parsed->ts_window_start, 1100);
  EXPECT_EQ(parsed->ts_windows, data.ts_windows);
  ASSERT_TRUE(parsed->has_audit);
  EXPECT_EQ(parsed->audit.bytes, 4096);
  EXPECT_DOUBLE_EQ(parsed->audit.total_cost, 123.5);
  // Full fidelity: re-serialization is byte-identical.
  EXPECT_EQ(robust::SerializeCheckpoint(*parsed), text);
}

// ---- FaultyOracle --------------------------------------------------------

TEST(FaultyOracleTest, CorruptRulesFlipOutcomes) {
  IndependentOracle inner({0.9, 0.2, 0.8, 0.3});
  FaultPlan plan;
  plan.seed = 42;
  plan.rules.push_back({FaultKind::kCorrupt, 1.0, -1, 1.0});
  FaultyOracle corrupted(&inner, plan);
  IndependentOracle control({0.9, 0.2, 0.8, 0.3});

  Rng rng_a(7), rng_b(7);
  for (int i = 0; i < 50; ++i) {
    Context truth = control.Next(rng_a);
    Context lied = corrupted.Next(rng_b);
    for (size_t e = 0; e < 4; ++e) {
      EXPECT_EQ(lied.Unblocked(e), !truth.Unblocked(e));
    }
  }
  EXPECT_EQ(corrupted.corruptions(), 50 * 4);
}

TEST(FaultyOracleTest, ZeroProbabilityIsTransparent) {
  IndependentOracle inner({0.9, 0.2, 0.8, 0.3});
  FaultPlan plan;
  plan.rules.push_back({FaultKind::kCorrupt, 0.0, -1, 1.0});
  FaultyOracle wrapped(&inner, plan);
  IndependentOracle control({0.9, 0.2, 0.8, 0.3});

  Rng rng_a(7), rng_b(7);
  for (int i = 0; i < 50; ++i) {
    Context a = control.Next(rng_a);
    Context b = wrapped.Next(rng_b);
    for (size_t e = 0; e < 4; ++e) {
      EXPECT_EQ(a.Unblocked(e), b.Unblocked(e));
    }
  }
  EXPECT_EQ(wrapped.corruptions(), 0);
}

}  // namespace
}  // namespace stratlearn
