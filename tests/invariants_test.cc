// Cross-cutting invariants checked by randomized sweeps: properties that
// tie modules together rather than belonging to any single one.

#include <gtest/gtest.h>

#include "core/expected_cost.h"
#include "core/pao.h"
#include "core/transformations.h"
#include "core/upsilon.h"
#include "engine/query_processor.h"
#include "graph/examples.h"
#include "util/math_util.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

/// Produces a random VALID (possibly eager) arc order: repeatedly picks
/// any arc whose tail is already reachable.
Strategy RandomValidStrategy(const InferenceGraph& graph, Rng& rng) {
  std::vector<char> used(graph.num_arcs(), 0);
  std::vector<char> visited(graph.num_nodes(), 0);
  visited[graph.root()] = 1;
  std::vector<ArcId> order;
  while (order.size() < graph.num_arcs()) {
    std::vector<ArcId> frontier;
    for (ArcId a = 0; a < graph.num_arcs(); ++a) {
      if (!used[a] && visited[graph.arc(a).from]) frontier.push_back(a);
    }
    ArcId pick = frontier[rng.NextBounded(frontier.size())];
    used[pick] = 1;
    visited[graph.arc(pick).to] = 1;
    order.push_back(pick);
  }
  Result<Strategy> strategy = Strategy::FromArcOrder(graph, order);
  EXPECT_TRUE(strategy.ok());
  return *strategy;
}

class StrategyFuzz : public ::testing::TestWithParam<int> {};

// Lazy dominance: canonicalising a strategy (deferring prefix arcs until
// their subtree is visited) never increases the cost on ANY context.
TEST_P(StrategyFuzz, CanonicalizationDominatesPointwise) {
  Rng rng(20000 + GetParam());
  RandomTreeOptions options;
  options.depth = 2 + GetParam() % 2;
  options.internal_experiment_prob = (GetParam() % 2) ? 0.3 : 0.0;
  RandomTree tree = MakeRandomTree(rng, options);
  size_t n = tree.graph.num_experiments();
  if (n > 12) GTEST_SKIP();

  Strategy eager = RandomValidStrategy(tree.graph, rng);
  Strategy lazy = eager.Canonicalized(tree.graph);
  QueryProcessor qp(&tree.graph);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    Context ctx = Context::FromMask(n, mask);
    EXPECT_LE(qp.Cost(lazy, ctx), qp.Cost(eager, ctx) + 1e-9)
        << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, StrategyFuzz, ::testing::Range(0, 25));

// Every execution's cost is bounded by the graph's total (max) cost, and
// success occurs iff some success arc's whole path is unblocked.
TEST(EngineInvariantsTest, CostBoundAndSuccessCharacterisation) {
  Rng rng(3);
  for (int t = 0; t < 20; ++t) {
    RandomTreeOptions options;
    options.internal_experiment_prob = 0.25;
    options.max_outcome_cost = 2.0;
    RandomTree tree = MakeRandomTree(rng, options);
    size_t n = tree.graph.num_experiments();
    if (n > 12) continue;
    Strategy theta = Strategy::DepthFirst(tree.graph);
    QueryProcessor qp(&tree.graph);
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      Context ctx = Context::FromMask(n, mask);
      Trace trace = qp.Execute(theta, ctx);
      EXPECT_LE(trace.cost, tree.graph.TotalCost() + 1e-9);
      bool reachable_success = false;
      for (ArcId s : tree.graph.SuccessArcs()) {
        bool open = true;
        for (ArcId a : tree.graph.Pi(s)) {
          int e = tree.graph.arc(a).experiment;
          if (e >= 0 && !ctx.Unblocked(e)) open = false;
        }
        int e = tree.graph.arc(s).experiment;
        if (e >= 0 && !ctx.Unblocked(e)) open = false;
        if (open) reachable_success = true;
      }
      EXPECT_EQ(trace.success, reachable_success) << "mask=" << mask;
    }
  }
}

TEST(ContextInvariantsTest, MaskRoundTrip) {
  Rng rng(5);
  for (int t = 0; t < 100; ++t) {
    size_t n = 1 + rng.NextBounded(20);
    uint64_t mask = rng.NextUint64() & ((uint64_t{1} << n) - 1);
    Context ctx = Context::FromMask(n, mask);
    EXPECT_EQ(ctx.EncodeMask(), mask);
    EXPECT_EQ(ctx.num_experiments(), n);
    Context same = Context::FromMask(n, mask);
    EXPECT_TRUE(ctx == same);
  }
}

// Upsilon's output cost is invariant under permuting sibling insertion
// order (determinism up to ties) and always <= the default strategy's.
TEST(UpsilonInvariantsTest, NeverWorseThanDefault) {
  Rng rng(7);
  for (int t = 0; t < 30; ++t) {
    RandomTree tree = MakeRandomTree(rng);
    Result<UpsilonResult> upsilon = UpsilonAot(tree.graph, tree.probs);
    ASSERT_TRUE(upsilon.ok());
    double default_cost = ExactExpectedCost(
        tree.graph, Strategy::DepthFirst(tree.graph), tree.probs);
    EXPECT_LE(upsilon->expected_cost, default_cost + 1e-9);
  }
}

// Swapping twice restores the strategy; the swap's Lambda bounds the
// per-context |Delta| on every context (the Equation 5 range soundness).
TEST(TransformationInvariantsTest, RangeBoundsDeltaEverywhere) {
  Rng rng(9);
  for (int t = 0; t < 15; ++t) {
    RandomTree tree = MakeRandomTree(rng);
    size_t n = tree.graph.num_experiments();
    if (n > 10) continue;
    Strategy theta = Strategy::DepthFirst(tree.graph);
    QueryProcessor qp(&tree.graph);
    for (const SiblingSwap& swap : AllSiblingSwaps(tree.graph)) {
      Strategy alt = ApplySwap(tree.graph, theta, swap);
      EXPECT_EQ(ApplySwap(tree.graph, alt, swap), theta);
      double conservative = SwapRange(tree.graph, swap);
      double tight = SwapRange(tree.graph, theta, swap);
      EXPECT_LE(tight, conservative + 1e-9);
      for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
        Context ctx = Context::FromMask(n, mask);
        double delta = qp.Cost(theta, ctx) - qp.Cost(alt, ctx);
        EXPECT_LE(std::fabs(delta), tight + 1e-9)
            << swap.ToString(tree.graph) << " mask=" << mask;
      }
    }
  }
}

// PAO quota vectors respond monotonically to every parameter, including
// on graphs with outcome costs (MaxCost-based F_not).
TEST(PaoInvariantsTest, QuotaMonotonicity) {
  Rng rng(11);
  RandomTreeOptions options;
  options.max_outcome_cost = 1.0;
  RandomTree tree = MakeRandomTree(rng, options);
  PaoOptions base;
  base.epsilon = 1.0;
  base.delta = 0.1;
  std::vector<int64_t> q0 = Pao::ComputeQuotas(tree.graph, base);

  PaoOptions tighter_eps = base;
  tighter_eps.epsilon = 0.5;
  PaoOptions tighter_delta = base;
  tighter_delta.delta = 0.01;
  std::vector<int64_t> q1 = Pao::ComputeQuotas(tree.graph, tighter_eps);
  std::vector<int64_t> q2 = Pao::ComputeQuotas(tree.graph, tighter_delta);
  for (size_t i = 0; i < q0.size(); ++i) {
    EXPECT_GE(q1[i], q0[i]);
    EXPECT_GE(q2[i], q0[i]);
  }
  // Theorem 3 quotas are finite and positive wherever Theorem 2's are.
  PaoOptions t3 = base;
  t3.mode = PaoOptions::Mode::kTheorem3;
  std::vector<int64_t> q3 = Pao::ComputeQuotas(tree.graph, t3);
  for (size_t i = 0; i < q0.size(); ++i) {
    EXPECT_EQ(q3[i] > 0, q0[i] > 0);
  }
}

// Monte-Carlo and exact expected costs agree on mixtures when fed the
// same distribution through different paths (oracle vs marginals) only
// when the mixture is actually independent.
TEST(OracleInvariantsTest, IndependentMixtureMatchesMarginalCost) {
  FigureTwoGraph g = MakeFigureTwo();
  // A mixture of two identical profiles IS independent.
  std::vector<double> p = {0.3, 0.6, 0.2, 0.7};
  MixtureOracle oracle({{1.0, p}, {2.0, p}});
  Strategy theta = Strategy::DepthFirst(g.graph);
  Rng rng(13);
  double mc = MonteCarloExpectedCost(g.graph, theta, oracle, 200000, rng);
  double exact = ExactExpectedCost(g.graph, theta, oracle.MarginalProbs());
  EXPECT_NEAR(mc, exact, 0.03);
}

}  // namespace
}  // namespace stratlearn
