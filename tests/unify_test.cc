#include "datalog/unify.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace stratlearn {
namespace {

class UnifyTest : public ::testing::Test {
 protected:
  Atom ParseAtom(const std::string& text) {
    Result<Atom> a = parser_.ParseAtom(text);
    EXPECT_TRUE(a.ok()) << a.status().ToString();
    return *a;
  }

  SymbolTable symbols_;
  Parser parser_{&symbols_};
};

TEST_F(UnifyTest, GroundToVariableBinds) {
  Substitution s;
  ASSERT_TRUE(UnifyAtoms(ParseAtom("p(a)"), ParseAtom("p(X)"), &s));
  EXPECT_EQ(s.Apply(ParseAtom("q(X)")).ToString(symbols_), "q(a)");
}

TEST_F(UnifyTest, MismatchedConstantsFail) {
  Substitution s;
  EXPECT_FALSE(UnifyAtoms(ParseAtom("p(a)"), ParseAtom("p(b)"), &s));
}

TEST_F(UnifyTest, DifferentPredicatesFail) {
  Substitution s;
  EXPECT_FALSE(UnifyAtoms(ParseAtom("p(a)"), ParseAtom("q(a)"), &s));
}

TEST_F(UnifyTest, DifferentArityFails) {
  Substitution s;
  EXPECT_FALSE(UnifyAtoms(ParseAtom("p(a)"), ParseAtom("p(a, b)"), &s));
}

TEST_F(UnifyTest, VariableToVariableChains) {
  Substitution s;
  ASSERT_TRUE(UnifyAtoms(ParseAtom("p(X, X)"), ParseAtom("p(Y, a)"), &s));
  // X ~ Y and X ~ a, so both walk to a.
  EXPECT_EQ(s.Apply(ParseAtom("q(X, Y)")).ToString(symbols_), "q(a, a)");
}

TEST_F(UnifyTest, RepeatedVariableConflictFails) {
  Substitution s;
  EXPECT_FALSE(UnifyAtoms(ParseAtom("p(X, X)"), ParseAtom("p(a, b)"), &s));
}

TEST_F(UnifyTest, BindRejectsConflict) {
  SymbolTable& t = symbols_;
  Substitution s;
  SymbolId x = t.Intern("X");
  EXPECT_TRUE(s.Bind(x, Term::Constant(t.Intern("a"))));
  EXPECT_TRUE(s.Bind(x, Term::Constant(t.Intern("a"))));  // idempotent
  EXPECT_FALSE(s.Bind(x, Term::Constant(t.Intern("b"))));
}

TEST_F(UnifyTest, WalkUnboundVariableIsIdentity) {
  Substitution s;
  Term v = Term::Variable(symbols_.Intern("Z"));
  EXPECT_EQ(s.Walk(v), v);
}

TEST_F(UnifyTest, ApplyLeavesUnboundVariables) {
  Substitution s;
  ASSERT_TRUE(UnifyAtoms(ParseAtom("p(a)"), ParseAtom("p(X)"), &s));
  Atom out = s.Apply(ParseAtom("q(X, Y)"));
  EXPECT_TRUE(out.args[0].is_constant());
  EXPECT_TRUE(out.args[1].is_variable());
}

TEST_F(UnifyTest, RenameClauseFreshensVariables) {
  Result<Program> p =
      parser_.ParseProgram("path(X, Y) :- edge(X, Z), path(Z, Y).");
  ASSERT_TRUE(p.ok());
  Clause r1 = RenameClause(p->rules[0], 1, &symbols_);
  Clause r2 = RenameClause(p->rules[0], 2, &symbols_);
  // Same shape, disjoint variables.
  EXPECT_NE(r1.head.args[0].symbol, r2.head.args[0].symbol);
  EXPECT_NE(r1.head.args[0].symbol, p->rules[0].head.args[0].symbol);
  // Constants untouched.
  Result<Program> q = parser_.ParseProgram("grad(fred) :- admitted(fred, X).");
  ASSERT_TRUE(q.ok());
  Clause renamed = RenameClause(q->rules[0], 7, &symbols_);
  EXPECT_EQ(renamed.head.args[0].symbol, symbols_.Intern("fred"));
  EXPECT_TRUE(renamed.body[0].args[1].is_variable());
}

TEST_F(UnifyTest, UnifyIsSymmetricInBindings) {
  Substitution s1, s2;
  ASSERT_TRUE(UnifyAtoms(ParseAtom("p(X, b)"), ParseAtom("p(a, Y)"), &s1));
  ASSERT_TRUE(UnifyAtoms(ParseAtom("p(a, Y)"), ParseAtom("p(X, b)"), &s2));
  EXPECT_EQ(s1.Apply(ParseAtom("q(X, Y)")).ToString(symbols_), "q(a, b)");
  EXPECT_EQ(s2.Apply(ParseAtom("q(X, Y)")).ToString(symbols_), "q(a, b)");
}

}  // namespace
}  // namespace stratlearn
