#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/pib.h"
#include "engine/query_processor.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/trace_sink.h"
#include "robust/checkpoint.h"
#include "robust/fault_injector.h"
#include "robust/fault_plan.h"
#include "robust/recovery/controller.h"
#include "robust/recovery/policy.h"
#include "util/rng.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

using robust::CheckpointData;
using robust::CheckpointRing;
using robust::MatchesTrigger;
using robust::RecoveryController;
using robust::RecoveryPolicy;
using robust::RecoveryRule;

obs::DriftEvent Detected(const char* detector, int64_t arc, int64_t window) {
  obs::DriftEvent e;
  e.detector = detector;
  e.state = "detected";
  e.arc = arc;
  e.statistic = 0.2;
  e.reference = 0.8;
  e.threshold = 0.3;
  e.window = window;
  return e;
}

obs::TimeSeriesWindow WindowAt(int64_t index) {
  obs::TimeSeriesWindow w;
  w.index = index;
  return w;
}

RecoveryRule Rule(const char* trigger, const char* action,
                  int64_t cooldown = 0) {
  RecoveryRule rule;
  rule.id = std::string(trigger) + "->" + action;
  rule.trigger = trigger;
  rule.action = action;
  rule.cooldown = cooldown;
  return rule;
}

/// Captures recovery and certificate events for assertion.
class RecordingSink final : public obs::TraceSink {
 public:
  void OnRecovery(const obs::RecoveryEvent& e) override {
    recovery.push_back(e);
  }
  void OnDecisionCertificate(
      const obs::DecisionCertificateEvent& e) override {
    certs.push_back(e);
  }
  std::vector<obs::RecoveryEvent> recovery;
  std::vector<obs::DecisionCertificateEvent> certs;
};

/// A small learned Pib over a flat 3-leaf tree, with some contexts
/// observed so trials/sums are nonzero.
struct PibFixture {
  PibFixture()
      : rng(7),
        tree(MakeFlatTree(rng, 3)),
        pib(&tree.graph, Strategy::DepthFirst(tree.graph),
            PibOptions{.delta = 0.2}, nullptr) {
    IndependentOracle oracle({0.3, 0.7, 0.5});
    QueryProcessor qp(&tree.graph, nullptr);
    for (int i = 0; i < 50; ++i) {
      pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
    }
  }

  Rng rng;
  RandomTree tree;
  Pib pib;
};

// ---- Trigger matching ----------------------------------------------------

TEST(MatchesTriggerTest, DriftTriggersMatchDetectorAndStateOnly) {
  RecoveryRule rule = Rule("drift:p_hat", "rebaseline");
  EXPECT_TRUE(MatchesTrigger(rule, Detected("p_hat", 2, 0)));
  EXPECT_FALSE(MatchesTrigger(rule, Detected("mean_cost", 2, 0)));

  obs::DriftEvent cleared = Detected("p_hat", 2, 0);
  cleared.state = "cleared";
  EXPECT_FALSE(MatchesTrigger(rule, cleared));

  RecoveryRule any = Rule("drift:any", "rebaseline");
  EXPECT_TRUE(MatchesTrigger(any, Detected("mean_cost", 2, 0)));
  EXPECT_TRUE(MatchesTrigger(any, Detected("rate", -1, 0)));
}

TEST(MatchesTriggerTest, ArcScopedActionsNeedATargetArc) {
  RecoveryRule scoped = Rule("drift:any", "restart_scoped");
  EXPECT_TRUE(MatchesTrigger(scoped, Detected("p_hat", 0, 0)));
  // Counter-rate detections carry no arc to scope the restart to.
  EXPECT_FALSE(MatchesTrigger(scoped, Detected("rate", -1, 0)));

  // Alert transitions never justify an arc-scoped action.
  obs::AlertEvent alert;
  alert.rule = "latency";
  alert.state = "firing";
  EXPECT_FALSE(MatchesTrigger(scoped, alert));
  EXPECT_TRUE(MatchesTrigger(Rule("alert:latency", "rebaseline"), alert));
  EXPECT_TRUE(MatchesTrigger(Rule("alert:any", "rollback"), alert));
  alert.state = "resolved";
  EXPECT_FALSE(MatchesTrigger(Rule("alert:latency", "rebaseline"), alert));
}

// ---- Checkpoint ring -----------------------------------------------------

CheckpointData HealthyCheckpoint(PibFixture& fx, int64_t queries) {
  CheckpointData data;
  data.learner = "pib";
  data.seed = 7;
  data.queries_done = queries;
  data.rng_state = fx.rng.SaveState();
  data.pib = fx.pib.GetCheckpoint();
  data.health.present = true;
  data.health.healthy = true;
  data.health.windows_seen = queries / 10;
  return data;
}

TEST(CheckpointRingTest, RotationPrunesOldestSlot) {
  PibFixture fx;
  std::string base = ::testing::TempDir() + "/ring_rotate.ckpt";
  CheckpointRing ring(base, 2);
  ASSERT_TRUE(ring.Write(HealthyCheckpoint(fx, 100)).ok());
  ASSERT_TRUE(ring.Write(HealthyCheckpoint(fx, 200)).ok());
  ASSERT_TRUE(ring.Write(HealthyCheckpoint(fx, 300)).ok());
  EXPECT_EQ(ring.writes(), 3);
  EXPECT_EQ(ring.cursor(), 1);  // slot 0 was just overwritten by 300

  // The ring holds {300, 200}; 100 was pruned by rotation.
  Result<CheckpointData> newest = ring.LoadNewestGood(fx.tree.graph);
  ASSERT_TRUE(newest.ok()) << newest.status().ToString();
  EXPECT_EQ(newest->queries_done, 300);
  Result<CheckpointData> slot1 =
      robust::LoadCheckpoint(ring.SlotPath(1), fx.tree.graph);
  ASSERT_TRUE(slot1.ok());
  EXPECT_EQ(slot1->queries_done, 200);
  for (int64_t s = 0; s < ring.slots(); ++s) {
    std::remove(ring.SlotPath(s).c_str());
  }
}

TEST(CheckpointRingTest, SkipsUnhealthyUnstampedAndCorruptSlots) {
  PibFixture fx;
  std::string base = ::testing::TempDir() + "/ring_skip.ckpt";
  CheckpointRing ring(base, 3);
  ASSERT_TRUE(ring.Write(HealthyCheckpoint(fx, 100)).ok());
  CheckpointData unhealthy = HealthyCheckpoint(fx, 200);
  unhealthy.health.healthy = false;
  ASSERT_TRUE(ring.Write(unhealthy).ok());
  CheckpointData unstamped = HealthyCheckpoint(fx, 300);
  unstamped.health.present = false;
  ASSERT_TRUE(ring.Write(unstamped).ok());

  // 300 has no verdict and 200 was flagged; only 100 is known-good.
  Result<CheckpointData> newest = ring.LoadNewestGood(fx.tree.graph);
  ASSERT_TRUE(newest.ok()) << newest.status().ToString();
  EXPECT_EQ(newest->queries_done, 100);

  // Damage the healthy slot too: the ring degrades to NotFound instead
  // of restoring corrupt state.
  FILE* f = std::fopen(ring.SlotPath(0).c_str(), "a");
  ASSERT_NE(f, nullptr);
  std::fputs("tamper", f);
  std::fclose(f);
  EXPECT_FALSE(ring.LoadNewestGood(fx.tree.graph).ok());
  for (int64_t s = 0; s < ring.slots(); ++s) {
    std::remove(ring.SlotPath(s).c_str());
  }
}

TEST(CheckpointRingTest, RestoreCursorIgnoresOutOfRangeValues) {
  CheckpointRing ring(::testing::TempDir() + "/ring_cursor.ckpt", 3);
  ring.RestoreCursor(2, 8);
  EXPECT_EQ(ring.cursor(), 2);
  EXPECT_EQ(ring.writes(), 8);
  ring.RestoreCursor(5, 9);  // out of range: keep the current rotation
  EXPECT_EQ(ring.cursor(), 2);
  EXPECT_EQ(ring.writes(), 8);
  ring.RestoreCursor(-1, 9);
  EXPECT_EQ(ring.cursor(), 2);
}

// ---- Recovery controller -------------------------------------------------

TEST(RecoveryControllerTest, DecideOnlyRecordsWithoutExecuting) {
  PibFixture fx;
  int64_t trials_before = fx.pib.trial_count();
  RecoveryPolicy policy;
  policy.rules.push_back(Rule("drift:p_hat", "rebaseline"));
  RecoveryController controller(std::move(policy));
  controller.BindPib(&fx.pib);  // bound but not live

  std::vector<obs::health::RecoveryLogEntry> fired = controller.OnWindow(
      WindowAt(3), {Detected("p_hat", 1, 3)}, {});
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule, "drift:p_hat->rebaseline");
  EXPECT_EQ(fired[0].action, "rebaseline");
  EXPECT_EQ(fired[0].window, 3);
  EXPECT_EQ(fired[0].arc, -1);  // rebaseline is global
  EXPECT_EQ(fired[0].matched, 1);
  EXPECT_EQ(controller.decisions(), 1);
  EXPECT_EQ(controller.actions_applied(), 0);
  EXPECT_EQ(fx.pib.trial_count(), trials_before);  // untouched
}

TEST(RecoveryControllerTest, CooldownSuppressesRefiringPerTarget) {
  RecoveryPolicy policy;
  policy.rules.push_back(Rule("drift:any", "rebaseline", /*cooldown=*/2));
  RecoveryController controller(std::move(policy));

  EXPECT_EQ(
      controller.OnWindow(WindowAt(0), {Detected("p_hat", 1, 0)}, {}).size(),
      1u);
  EXPECT_TRUE(
      controller.OnWindow(WindowAt(1), {Detected("p_hat", 1, 1)}, {})
          .empty());
  EXPECT_TRUE(
      controller.OnWindow(WindowAt(2), {Detected("p_hat", 1, 2)}, {})
          .empty());
  EXPECT_EQ(
      controller.OnWindow(WindowAt(3), {Detected("p_hat", 1, 3)}, {}).size(),
      1u);
  EXPECT_EQ(controller.decisions(), 2);
}

TEST(RecoveryControllerTest, ArcScopedRuleFiresOncePerDriftedArc) {
  RecoveryPolicy policy;
  policy.rules.push_back(Rule("drift:p_hat", "restart_scoped"));
  RecoveryController controller(std::move(policy));

  // Two arcs drift in one window (arc 2 twice); entries are per arc,
  // ascending, with the matched count folded in.
  std::vector<obs::health::RecoveryLogEntry> fired = controller.OnWindow(
      WindowAt(0),
      {Detected("p_hat", 2, 0), Detected("p_hat", 0, 0),
       Detected("p_hat", 2, 0)},
      {});
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].arc, 0);
  EXPECT_EQ(fired[0].matched, 1);
  EXPECT_EQ(fired[1].arc, 2);
  EXPECT_EQ(fired[1].matched, 2);
}

TEST(RecoveryControllerTest, RebaselineRewindsTheBoundLearner) {
  PibFixture fx;
  int64_t trials_before = fx.pib.trial_count();
  ASSERT_GT(trials_before, 1);

  RecoveryPolicy policy;
  RecoveryRule rule = Rule("drift:p_hat", "rebaseline");
  rule.trials_factor = 0.5;
  policy.rules.push_back(rule);
  RecoveryController controller(std::move(policy));
  controller.BindPib(&fx.pib);
  controller.set_live(true);

  controller.OnWindow(WindowAt(0), {Detected("p_hat", 1, 0)}, {});
  EXPECT_EQ(controller.actions_applied(), 1);
  EXPECT_EQ(fx.pib.trial_count(), trials_before / 2);
  for (const PibSnapshot::Neighbor& n : fx.pib.Snapshot().neighbors) {
    EXPECT_DOUBLE_EQ(n.delta_sum, 0.0);  // stale evidence dropped
  }
}

TEST(RecoveryControllerTest, UnboundTargetDegradesToSkipped) {
  RecoveryPolicy policy;
  policy.rules.push_back(Rule("drift:p_hat", "rebaseline"));
  RecoveryController controller(std::move(policy));
  controller.set_live(true);  // live, but no Pib bound

  obs::MetricsRegistry registry;
  RecordingSink sink;
  obs::Observer observer(&registry, &sink);
  controller.BindObserver(&observer);

  controller.OnWindow(WindowAt(0), {Detected("p_hat", 1, 0)}, {});
  EXPECT_EQ(controller.decisions(), 1);
  EXPECT_EQ(controller.actions_applied(), 0);
  ASSERT_EQ(sink.recovery.size(), 1u);
  EXPECT_EQ(sink.recovery[0].outcome, "skipped_unsupported");
}

TEST(RecoveryControllerTest, RollbackRestoresNewestGoodKeepingLedger) {
  PibFixture fx;
  std::string base = ::testing::TempDir() + "/ring_rollback.ckpt";
  CheckpointRing ring(base, 2);

  // Stamp a known-good slot, then keep learning and spend some of the
  // audit ledger so the rollback has something it must NOT rewind.
  ASSERT_TRUE(ring.Write(HealthyCheckpoint(fx, 50)).ok());
  Pib::Checkpoint good = fx.pib.GetCheckpoint();
  IndependentOracle oracle({0.3, 0.7, 0.5});
  QueryProcessor qp(&fx.tree.graph, nullptr);
  for (int i = 0; i < 30; ++i) {
    fx.pib.Observe(qp.Execute(fx.pib.strategy(), oracle.Next(fx.rng)));
  }
  Pib::Checkpoint drifted = fx.pib.GetCheckpoint();
  drifted.audit_delta_spent = 0.125;
  drifted.audit_rounds = 9;
  ASSERT_TRUE(fx.pib.RestoreCheckpoint(drifted).ok());

  RecoveryPolicy policy;
  policy.ring = 2;
  policy.rules.push_back(Rule("drift:p_hat", "rollback"));
  RecoveryController controller(std::move(policy));
  controller.BindPib(&fx.pib);
  controller.BindRing(&ring);
  controller.BindGraph(&fx.tree.graph);
  controller.set_live(true);

  controller.OnWindow(WindowAt(0), {Detected("p_hat", 1, 0)}, {});
  EXPECT_EQ(controller.actions_applied(), 1);
  // Learner state rewound to the ring slot...
  EXPECT_EQ(fx.pib.contexts_processed(), good.contexts);
  EXPECT_EQ(fx.pib.trial_count(), good.trials);
  // ...but confidence already consumed stays consumed (monotone ledger).
  EXPECT_DOUBLE_EQ(fx.pib.GetCheckpoint().audit_delta_spent, 0.125);
  EXPECT_EQ(fx.pib.GetCheckpoint().audit_rounds, 9);
  for (int64_t s = 0; s < ring.slots(); ++s) {
    std::remove(ring.SlotPath(s).c_str());
  }
}

TEST(RecoveryControllerTest, RollbackWithEmptyRingSkips) {
  PibFixture fx;
  CheckpointRing ring(::testing::TempDir() + "/ring_empty.ckpt", 2);
  RecoveryPolicy policy;
  policy.ring = 2;
  policy.rules.push_back(Rule("drift:p_hat", "rollback"));
  RecoveryController controller(std::move(policy));
  controller.BindPib(&fx.pib);
  controller.BindRing(&ring);
  controller.BindGraph(&fx.tree.graph);
  controller.set_live(true);

  obs::MetricsRegistry registry;
  RecordingSink sink;
  obs::Observer observer(&registry, &sink);
  controller.BindObserver(&observer);

  int64_t contexts_before = fx.pib.contexts_processed();
  controller.OnWindow(WindowAt(0), {Detected("p_hat", 1, 0)}, {});
  EXPECT_EQ(controller.actions_applied(), 0);
  EXPECT_EQ(fx.pib.contexts_processed(), contexts_before);
  ASSERT_EQ(sink.recovery.size(), 1u);
  EXPECT_EQ(sink.recovery[0].outcome, "skipped_no_checkpoint");
}

TEST(RecoveryControllerTest, QuarantineForcesBreakerOpenWithProbe) {
  robust::FaultPlan plan;  // no breaker threshold configured at all
  robust::FaultInjector injector(plan);
  for (int i = 0; i < 10; ++i) injector.BeginQuery();

  RecoveryPolicy policy;
  RecoveryRule rule = Rule("drift:p_hat", "quarantine");
  rule.probe_cooldown = 4;
  policy.rules.push_back(rule);
  RecoveryController controller(std::move(policy));
  controller.BindInjector(&injector);
  controller.set_live(true);

  controller.OnWindow(WindowAt(0), {Detected("p_hat", 2, 0)}, {});
  EXPECT_EQ(controller.actions_applied(), 1);
  EXPECT_TRUE(injector.BreakerLedger(2).forced);
  // Forced open for 4 resilient queries from query 10, then the normal
  // half-open probe schedule applies.
  EXPECT_TRUE(injector.BreakerOpen(2, 11));
  EXPECT_TRUE(injector.BreakerOpen(2, 14));
  EXPECT_EQ(injector.CheckBreaker(2, 15),
            robust::BreakerDecision::kHalfOpenProbe);
  EXPECT_TRUE(injector.RecordRecovery(2));  // probe succeeded: closed
  EXPECT_FALSE(injector.BreakerOpen(2, 16));
}

TEST(RecoveryControllerTest, LiveActionEmitsEventAndCountCertificate) {
  PibFixture fx;
  RecoveryPolicy policy;
  policy.rules.push_back(Rule("drift:p_hat", "rebaseline"));
  RecoveryController controller(std::move(policy));
  controller.BindPib(&fx.pib);
  controller.set_live(true);

  obs::MetricsRegistry registry;
  RecordingSink sink;
  obs::Observer observer(&registry, &sink);
  observer.set_audit_enabled(true);
  controller.BindObserver(&observer);

  controller.OnWindow(WindowAt(5),
                      {Detected("p_hat", 1, 5), Detected("p_hat", 1, 5)},
                      {});
  ASSERT_EQ(sink.recovery.size(), 1u);
  const obs::RecoveryEvent& event = sink.recovery[0];
  EXPECT_EQ(event.rule, "drift:p_hat->rebaseline");
  EXPECT_EQ(event.action, "rebaseline");
  EXPECT_EQ(event.outcome, "applied");
  EXPECT_EQ(event.window, 5);
  EXPECT_EQ(event.matched, 2);

  // The certificate's test is count-based: delta_sum = matched
  // transitions against threshold 1, margin = matched - 1, no delta
  // charged — audit_verify recounts transitions to re-derive it.
  ASSERT_EQ(sink.certs.size(), 1u);
  const obs::DecisionCertificateEvent& cert = sink.certs[0];
  EXPECT_EQ(cert.learner, "recovery");
  EXPECT_EQ(cert.decision, "drift:p_hat->rebaseline");
  EXPECT_EQ(cert.verdict, "rebaseline");
  EXPECT_EQ(cert.trials, 1);
  EXPECT_DOUBLE_EQ(cert.delta_sum, 2.0);
  EXPECT_DOUBLE_EQ(cert.threshold, 1.0);
  EXPECT_DOUBLE_EQ(cert.margin, 1.0);
}

}  // namespace
}  // namespace stratlearn
