// Property/fuzz test for the Datalog front end: seeded random byte
// mutations of the checked-in programs must never crash, hang or leak
// (the suite runs under ASan/UBSan in CI) — a damaged input may only
// yield parse diagnostics. The seed is fixed so a failure is
// reproducible from the iteration number alone.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/database.h"
#include "datalog/parser.h"
#include "datalog/rule_base.h"
#include "datalog/symbol_table.h"
#include "util/rng.h"

namespace stratlearn {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> SeedCorpus() {
  const std::string testdata = STRATLEARN_TESTDATA;
  return {
      ReadAll(testdata + "/university.dl"),
      ReadAll(testdata + "/verify/clean.dl"),
      ReadAll(testdata + "/verify/p001_syntax_error.dl"),
      ReadAll(testdata + "/verify/r001_not_range_restricted.dl"),
  };
}

/// Applies 1-8 random byte edits (substitute / insert / erase) to `text`.
std::string Mutate(const std::string& text, Rng& rng) {
  std::string mutated = text;
  int edits = static_cast<int>(rng.NextBounded(8)) + 1;
  for (int e = 0; e < edits; ++e) {
    char byte = static_cast<char>(rng.NextBounded(256));
    size_t at = mutated.empty()
                    ? 0
                    : static_cast<size_t>(rng.NextBounded(mutated.size()));
    switch (rng.NextBounded(3)) {
      case 0:
        if (!mutated.empty()) mutated[at] = byte;
        break;
      case 1:
        mutated.insert(mutated.begin() + static_cast<ptrdiff_t>(at), byte);
        break;
      default:
        if (!mutated.empty()) {
          mutated.erase(mutated.begin() + static_cast<ptrdiff_t>(at));
        }
        break;
    }
  }
  return mutated;
}

TEST(ParserFuzzTest, MutatedProgramsNeverCrash) {
  std::vector<std::string> corpus = SeedCorpus();
  Rng rng(20260806);
  int parsed_ok = 0;
  for (int iteration = 0; iteration < 1000; ++iteration) {
    const std::string& base = corpus[iteration % corpus.size()];
    std::string input = Mutate(base, rng);
    SCOPED_TRACE("iteration " + std::to_string(iteration));

    SymbolTable symbols;
    Parser parser(&symbols);
    Result<Program> program = parser.ParseProgram(input);
    if (!program.ok()) continue;
    ++parsed_ok;
    // A structurally valid mutant must also survive the load path
    // (facts into the database, rules into the rule base).
    SymbolTable load_symbols;
    Parser loader(&load_symbols);
    Database db;
    RuleBase rules;
    (void)loader.LoadProgram(input, &db, &rules);
  }
  // Small mutations leave many programs valid; if nothing ever parses,
  // the harness is mutating garbage (or the corpus failed to load).
  EXPECT_GT(parsed_ok, 0);
}

TEST(ParserFuzzTest, HostileInputsYieldDiagnosticsOnly) {
  SymbolTable symbols;
  Parser parser(&symbols);
  const char* hostile[] = {
      "",
      "\0\0\0",
      ":-",
      "p(",
      "p(a) :- q(X",
      "p(a).p(a).p(a).p(a).",
      "% only a comment",
      "p(a) :- :- q(b).",
      "\xff\xfe\xfd garbage \x01\x02",
      "p(((((((((((((((((a))))))))))))))))).",
  };
  for (const char* input : hostile) {
    (void)parser.ParseProgram(input);  // must not crash
  }
}

}  // namespace
}  // namespace stratlearn
