#include "stats/chernoff.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/math_util.h"
#include "util/rng.h"

namespace stratlearn {
namespace {

TEST(HoeffdingTest, TailProbabilityMatchesFormula) {
  // exp(-2 * 100 * (0.1/1)^2) = exp(-2).
  EXPECT_NEAR(HoeffdingTailProbability(100, 0.1, 1.0), std::exp(-2.0), 1e-12);
}

TEST(HoeffdingTest, TailShrinksWithSamplesAndDeviation) {
  EXPECT_GT(HoeffdingTailProbability(10, 0.1, 1.0),
            HoeffdingTailProbability(100, 0.1, 1.0));
  EXPECT_GT(HoeffdingTailProbability(100, 0.05, 1.0),
            HoeffdingTailProbability(100, 0.2, 1.0));
}

TEST(HoeffdingTest, DeviationInvertsTail) {
  // Tail probability at the deviation bound equals delta.
  for (double delta : {0.2, 0.05, 0.01}) {
    for (int64_t n : {int64_t{10}, int64_t{500}}) {
      double beta = HoeffdingDeviation(n, delta, 2.0);
      EXPECT_NEAR(HoeffdingTailProbability(n, beta, 2.0), delta, 1e-10);
    }
  }
}

TEST(HoeffdingTest, SumThresholdIsNTimesMeanDeviation) {
  int64_t n = 77;
  double delta = 0.03, range = 1.5;
  EXPECT_NEAR(SumThreshold(n, delta, range),
              static_cast<double>(n) * HoeffdingDeviation(n, delta, range),
              1e-9);
}

TEST(HoeffdingTest, BonferroniThresholdGrowsWithK) {
  double t1 = SumThresholdBonferroni(100, 0.05, 1.0, 1);
  double t4 = SumThresholdBonferroni(100, 0.05, 1.0, 4);
  EXPECT_NEAR(t1, SumThreshold(100, 0.05, 1.0), 1e-12);
  EXPECT_GT(t4, t1);
}

TEST(HoeffdingTest, SampleSizeSufficesForDeviation) {
  double beta = 0.05, delta = 0.01, range = 1.0;
  int64_t n = SampleSizeForDeviation(beta, delta, range);
  EXPECT_LE(HoeffdingDeviation(n, delta, range), beta + 1e-12);
  // And n-1 would not suffice (tightness up to ceiling).
  if (n > 1) {
    EXPECT_GT(HoeffdingDeviation(n - 1, delta, range), beta - 1e-3);
  }
}

TEST(PaoQuotaTest, Equation7Value) {
  // m = ceil(2 (n F / eps)^2 ln(2n/delta)), n=2, F=2, eps=1, delta=0.1:
  // 2 * 16 * ln(40) = 118.04... -> 119.
  int64_t m = PaoRetrievalQuota(2, 2.0, 1.0, 0.1);
  EXPECT_EQ(m, static_cast<int64_t>(
                   std::ceil(2.0 * 16.0 * std::log(40.0))));
}

TEST(PaoQuotaTest, Equation7Monotonicity) {
  EXPECT_GT(PaoRetrievalQuota(2, 2.0, 0.5, 0.1),
            PaoRetrievalQuota(2, 2.0, 1.0, 0.1));
  EXPECT_GT(PaoRetrievalQuota(2, 2.0, 1.0, 0.01),
            PaoRetrievalQuota(2, 2.0, 1.0, 0.1));
  EXPECT_GT(PaoRetrievalQuota(4, 2.0, 1.0, 0.1),
            PaoRetrievalQuota(2, 2.0, 1.0, 0.1));
  EXPECT_GT(PaoRetrievalQuota(2, 4.0, 1.0, 0.1),
            PaoRetrievalQuota(2, 2.0, 1.0, 0.1));
}

TEST(PaoQuotaTest, ZeroFNegNeedsNoSamples) {
  EXPECT_EQ(PaoRetrievalQuota(3, 0.0, 1.0, 0.1), 0);
  EXPECT_EQ(PaoReachQuota(3, 0.0, 1.0, 0.1), 0);
}

TEST(PaoQuotaTest, Equation8Value) {
  // m' = ceil(2 (sqrt(2 eps/(n F) + 1) - 1)^-2 ln(4n/delta)).
  int64_t n = 2;
  double f = 2.0, eps = 1.0, delta = 0.1;
  double inner = std::sqrt(2.0 * eps / (n * f) + 1.0) - 1.0;
  int64_t expected = static_cast<int64_t>(
      std::ceil(2.0 / (inner * inner) * std::log(4.0 * n / delta)));
  EXPECT_EQ(PaoReachQuota(n, f, eps, delta), expected);
}

TEST(PaoQuotaTest, Footnote11AsymptoticAgreement) {
  // The paper's footnote 11: the leading term of m'(e) as the per-arc
  // slack shrinks is 2 (nF/eps)^2 ln(4n/delta) — within a factor ~2 of
  // Equation 7 (whose log is ln(2n/delta)) for small eps.
  int64_t n = 4;
  double f = 3.0, delta = 0.05;
  for (double eps : {0.1, 0.01}) {
    double ratio = static_cast<double>(PaoReachQuota(n, f, eps, delta)) /
                   static_cast<double>(PaoRetrievalQuota(n, f, eps, delta));
    double log_ratio = std::log(4.0 * n / delta) / std::log(2.0 * n / delta);
    EXPECT_NEAR(ratio, log_ratio, 0.1);
  }
}

// Empirical validation of Equation 1 on Bernoulli sums: the observed
// violation rate of the bound must be below the bound's value.
TEST(HoeffdingTest, EmpiricalCoverage) {
  Rng rng(1234);
  const int64_t n = 50;
  const double p = 0.3;
  const double beta = 0.15;
  const int trials = 4000;
  int violations = 0;
  for (int t = 0; t < trials; ++t) {
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) sum += rng.NextBernoulli(p) ? 1.0 : 0.0;
    if (sum / n > p + beta) ++violations;
  }
  double bound = HoeffdingTailProbability(n, beta, 1.0);
  EXPECT_LE(static_cast<double>(violations) / trials, bound + 0.02);
}

}  // namespace
}  // namespace stratlearn
