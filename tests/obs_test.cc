// Tests for the src/obs observability layer: histogram bucket and
// percentile math, the metrics JSON snapshot (golden), JSON writer and
// validator, and a JSONL round-trip over a real PIB learning run.

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pib.h"
#include "engine/query_processor.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/openmetrics.h"
#include "obs/sinks.h"
#include "obs/timer.h"
#include "obs/trace_reader.h"
#include "util/string_util.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

using obs::Histogram;
using obs::IsValidJson;
using obs::JsonWriter;
using obs::MetricsRegistry;

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Value(int64_t{1});
  w.Key("b").BeginArray().Value(1.5).Value(true).Null().EndArray();
  w.Key("c").BeginObject().Key("d").Value("x\"y\n").EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[1.5,true,null],"c":{"d":"x\"y\n"}})");
  EXPECT_TRUE(IsValidJson(w.str()));
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Value(std::numeric_limits<double>::infinity());
  w.Value(std::nan(""));
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonValidatorTest, AcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson(R"({"k":[1,2.5e-3,"s",true,false,null]})"));
  EXPECT_TRUE(IsValidJson("  -0.25  "));
  EXPECT_TRUE(IsValidJson(R"("é\n")"));
  EXPECT_FALSE(IsValidJson(""));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson("{'k':1}"));
  EXPECT_FALSE(IsValidJson("{\"k\":1,}"));
  EXPECT_FALSE(IsValidJson("[1 2]"));
  EXPECT_FALSE(IsValidJson("01"));
  EXPECT_FALSE(IsValidJson("{\"a\":1}{\"b\":2}"));  // two values
  EXPECT_FALSE(IsValidJson("\"unterminated"));
}

TEST(HistogramTest, BucketAssignment) {
  Histogram h({1.0, 10.0, 100.0});
  ASSERT_EQ(h.num_buckets(), 4u);  // 3 bounds + overflow
  h.Record(0.5);    // <= 1
  h.Record(1.0);    // <= 1 (bounds are inclusive upper)
  h.Record(5.0);    // <= 10
  h.Record(100.0);  // <= 100
  h.Record(1e6);    // overflow
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  EXPECT_DOUBLE_EQ(h.bucket_upper(3),
                   std::numeric_limits<double>::infinity());
}

TEST(HistogramTest, PercentileInterpolation) {
  // 100 samples uniform in (0, 100]: percentile ~ value.
  Histogram h(obs::LinearBuckets(10.0, 10.0, 10));
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  EXPECT_NEAR(h.Percentile(50), 50.0, 10.0);
  EXPECT_NEAR(h.Percentile(90), 90.0, 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
  // Estimates never leave the observed range.
  EXPECT_GE(h.Percentile(0), h.min());
  EXPECT_LE(h.Percentile(99.9), h.max());
}

TEST(HistogramTest, PercentileDegenerateCases) {
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.0);
  Histogram one({1.0, 2.0});
  one.Record(1.5);
  EXPECT_DOUBLE_EQ(one.Percentile(0), 1.5);
  EXPECT_DOUBLE_EQ(one.Percentile(50), 1.5);
  EXPECT_DOUBLE_EQ(one.Percentile(100), 1.5);
}

TEST(HistogramTest, AllSamplesInOverflowBucket) {
  // Every sample lands past the last bound; the overflow bucket spans
  // [last bound, max] and interpolation stays inside [min, max].
  Histogram h({1.0, 2.0});
  for (double v : {10.0, 20.0, 30.0, 40.0}) h.Record(v);
  EXPECT_EQ(h.bucket_count(0), 0);
  EXPECT_EQ(h.bucket_count(1), 0);
  EXPECT_EQ(h.bucket_count(2), 4);
  // rank 2 of 4 in [2, 40]: 2 + 38 * 0.5 = 21.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 21.0);
  // Interpolated 11.5 from the bucket span; already above min.
  EXPECT_DOUBLE_EQ(h.Percentile(25), 11.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 10.0);    // clamped up to min
  EXPECT_DOUBLE_EQ(h.Percentile(100), 40.0);  // within = 1 -> max
}

TEST(HistogramTest, SingleSampleInOverflowBucket) {
  Histogram h({1.0});
  h.Record(50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 50.0);
}

TEST(HistogramTest, PercentileEndpointsPinned) {
  // One sample per bucket: 5 in (.,10], 15 in (10,20], 25 in (20,30].
  Histogram h({10.0, 20.0, 30.0});
  for (double v : {5.0, 15.0, 25.0}) h.Record(v);
  // p0 uses min(min, first bound) as the lower edge: exactly min.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 5.0);
  // rank 1.5 falls halfway through the (10,20] bucket.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 15.0);
  // p100 interpolates to the bucket top (30) then clamps to max.
  EXPECT_DOUBLE_EQ(h.Percentile(100), 25.0);
}

TEST(HistogramTest, EmptyHistogramMinMaxAreZero) {
  // Regression: min_/max_ start at +/-inf internally; the accessors and
  // every serialization must clamp the empty case to 0, never leak the
  // sentinels.
  Histogram h({1.0, 10.0});
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  obs::HistogramSnapshot snapshot = h.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.min, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 0.0);
  // After the first sample both collapse to that sample.
  h.Record(3.0);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(HistogramMergeTest, CombinesBucketsAndMoments) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  a.Record(0.5);
  a.Record(5.0);
  b.Record(7.0);
  b.Record(2000.0);  // overflow bucket
  a.Merge(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_DOUBLE_EQ(a.sum(), 0.5 + 5.0 + 7.0 + 2000.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 2000.0);
  EXPECT_EQ(a.bucket_count(0), 1);
  EXPECT_EQ(a.bucket_count(1), 2);
  EXPECT_EQ(a.bucket_count(2), 1);  // overflow came across
  // `b` is untouched.
  EXPECT_EQ(b.count(), 2);
}

TEST(HistogramMergeTest, EmptySidesAreExact) {
  Histogram target({1.0});
  Histogram empty({1.0});
  // Empty into empty: still empty, min/max still clamp to 0.
  target.Merge(empty);
  EXPECT_EQ(target.count(), 0);
  EXPECT_DOUBLE_EQ(target.min(), 0.0);
  EXPECT_DOUBLE_EQ(target.max(), 0.0);
  // Empty into non-empty: a no-op that must not fold the empty side's
  // min/max sentinels (or zeros) into real extrema.
  target.Record(5.0);
  target.Merge(empty);
  EXPECT_EQ(target.count(), 1);
  EXPECT_DOUBLE_EQ(target.min(), 5.0);
  EXPECT_DOUBLE_EQ(target.max(), 5.0);
  // Non-empty into empty: the target adopts the source's extrema.
  Histogram fresh({1.0});
  fresh.Merge(target);
  EXPECT_EQ(fresh.count(), 1);
  EXPECT_DOUBLE_EQ(fresh.min(), 5.0);
  EXPECT_DOUBLE_EQ(fresh.max(), 5.0);
}

TEST(HistogramMergeTest, MismatchedBoundsAbort) {
  Histogram a({1.0, 2.0});
  Histogram coarser({1.0});
  Histogram shifted({1.0, 3.0});
  EXPECT_DEATH(a.Merge(coarser), "bounds");
  EXPECT_DEATH(a.Merge(shifted), "bounds");
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  obs::Counter& c = registry.GetCounter("a.count");
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(registry.GetCounter("a.count").value(), 42);
  registry.GetGauge("a.gauge").Set(2.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("a.gauge").value(), 2.5);
  // Custom bounds apply on first creation only.
  obs::Histogram& h = registry.GetHistogram("a.hist", {1.0, 2.0});
  EXPECT_EQ(&h, &registry.GetHistogram("a.hist"));
  EXPECT_EQ(h.num_buckets(), 3u);
}

TEST(MetricsRegistryTest, SnapshotJsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("qp.queries").Increment(3);
  registry.GetGauge("qpa.quota_remaining").Set(7);
  Histogram& h = registry.GetHistogram("qp.query_cost", {1.0, 10.0});
  h.Record(0.5);
  h.Record(4.0);
  const char* expected =
      R"({"counters":{"qp.queries":3},)"
      R"("gauges":{"qpa.quota_remaining":7},)"
      R"("histograms":{"qp.query_cost":{"count":2,"sum":4.5,"min":0.5,)"
      R"("max":4,"mean":2.25,"p50":1,"p90":4,"p99":4,)"
      R"("buckets":[{"le":1,"count":1},{"le":10,"count":1},)"
      R"({"le":"+Inf","count":0}]}}})";
  EXPECT_EQ(registry.SnapshotJson(), expected);
  EXPECT_TRUE(IsValidJson(registry.SnapshotJson()));
}

TEST(MetricsRegistryTest, NonFiniteGaugesStillRenderValidJson) {
  // Regression: a NaN or infinite gauge must not leak "nan"/"inf"
  // tokens into the snapshot (invalid JSON); they render as null.
  MetricsRegistry registry;
  registry.GetGauge("g.nan").Set(std::nan(""));
  registry.GetGauge("g.pos_inf").Set(std::numeric_limits<double>::infinity());
  registry.GetGauge("g.neg_inf").Set(-std::numeric_limits<double>::infinity());
  registry.GetGauge("g.finite").Set(1.5);
  std::string json = registry.SnapshotJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_EQ(json,
            R"({"counters":{},"gauges":{"g.finite":1.5,"g.nan":null,)"
            R"("g.neg_inf":null,"g.pos_inf":null},"histograms":{}})");
}

TEST(OpenMetricsTest, NameSanitization) {
  EXPECT_EQ(obs::OpenMetricsName("qp.arc_attempts"), "qp_arc_attempts");
  EXPECT_EQ(obs::OpenMetricsName("a-b c"), "a_b_c");
  EXPECT_EQ(obs::OpenMetricsName("9lives"), "_9lives");
  EXPECT_EQ(obs::OpenMetricsName(""), "_");
}

TEST(OpenMetricsTest, ExpositionGolden) {
  MetricsRegistry registry;
  registry.GetCounter("qp.queries").Increment(3);
  registry.GetGauge("qpa.quota_remaining").Set(7);
  Histogram& h = registry.GetHistogram("qp.query_cost", {1.0, 10.0});
  h.Record(0.5);
  h.Record(4.0);
  const char* expected =
      "# TYPE qp_queries counter\n"
      "qp_queries_total 3\n"
      "# TYPE qpa_quota_remaining gauge\n"
      "qpa_quota_remaining 7\n"
      "# TYPE qp_query_cost histogram\n"
      "qp_query_cost_bucket{le=\"1\"} 1\n"
      "qp_query_cost_bucket{le=\"10\"} 2\n"
      "qp_query_cost_bucket{le=\"+Inf\"} 2\n"
      "qp_query_cost_sum 4.5\n"
      "qp_query_cost_count 2\n"
      "# EOF\n";
  EXPECT_EQ(obs::OpenMetricsText(registry.Snapshot()), expected);
}

TEST(OpenMetricsTest, NonFiniteGaugesUseLiteralSpellings) {
  // Unlike JSON, the exposition format has NaN/+Inf/-Inf literals; a
  // non-finite gauge must survive the dump un-mangled.
  MetricsRegistry registry;
  registry.GetGauge("g.nan").Set(std::nan(""));
  registry.GetGauge("g.pos").Set(std::numeric_limits<double>::infinity());
  registry.GetGauge("g.neg").Set(-std::numeric_limits<double>::infinity());
  std::string text = obs::OpenMetricsText(registry.Snapshot());
  EXPECT_NE(text.find("g_nan NaN\n"), std::string::npos) << text;
  EXPECT_NE(text.find("g_pos +Inf\n"), std::string::npos) << text;
  EXPECT_NE(text.find("g_neg -Inf\n"), std::string::npos) << text;
}

TEST(ScopedTimerTest, RecordsElapsedMicros) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("t.us", {1e9});
  double out = -1.0;
  {
    obs::ScopedTimer timer(&h, &out);
    volatile double sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(h.count(), 1);
  EXPECT_GE(out, 0.0);
  EXPECT_DOUBLE_EQ(h.sum(), out);
  // Null targets are fine.
  { obs::ScopedTimer timer(nullptr); }
}

/// Splits sink output into non-empty lines.
std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  for (const std::string& line : Split(text, '\n')) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

int CountLinesOfType(const std::vector<std::string>& lines,
                     const std::string& type) {
  std::string needle = "\"type\":\"" + type + "\"";
  int count = 0;
  for (const std::string& line : lines) {
    if (line.find(needle) != std::string::npos) ++count;
  }
  return count;
}

TEST(JsonlSinkTest, PibRunRoundTrip) {
  // A real learn-pib-style run: PIB watching an instrumented query
  // processor over a synthetic workload, all events into JSONL.
  Rng rng(99);
  RandomTreeOptions tree_options;
  tree_options.depth = 3;
  tree_options.min_branch = 2;
  tree_options.max_branch = 3;
  RandomTree tree = MakeRandomTree(rng, tree_options);

  std::ostringstream out;
  obs::MetricsRegistry registry;
  obs::JsonlSink sink(&out);
  obs::Observer observer(&registry, &sink);

  Pib pib(&tree.graph, Strategy::DepthFirst(tree.graph),
          PibOptions{.delta = 0.2}, &observer);
  QueryProcessor qp(&tree.graph, &observer);
  IndependentOracle oracle(tree.probs);
  const int64_t kQueries = 2000;
  for (int64_t i = 0; i < kQueries; ++i) {
    pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
  }
  sink.Flush();

  std::vector<std::string> lines = Lines(out.str());
  ASSERT_FALSE(lines.empty());
  // Every line is exactly one well-formed JSON object.
  for (const std::string& line : lines) {
    EXPECT_TRUE(IsValidJson(line)) << "bad JSONL line: " << line;
    EXPECT_EQ(line.front(), '{') << line;
  }
  // Event counts agree with the learner's and processor's own getters.
  EXPECT_EQ(CountLinesOfType(lines, "climb_move"),
            static_cast<int>(pib.moves().size()));
  EXPECT_GE(pib.moves().size(), 1u) << "run too short to exercise a move";
  EXPECT_EQ(CountLinesOfType(lines, "query_start"), kQueries);
  EXPECT_EQ(CountLinesOfType(lines, "query_end"), kQueries);
  EXPECT_EQ(CountLinesOfType(lines, "sequential_test"),
            static_cast<int>(pib.contexts_processed()));

  // Metrics agree with the getters too (the acceptance criterion).
  EXPECT_EQ(registry.GetCounter("pib.moves").value(),
            static_cast<int64_t>(pib.moves().size()));
  EXPECT_EQ(registry.GetCounter("pib.contexts").value(),
            pib.contexts_processed());
  EXPECT_EQ(registry.GetCounter("qp.queries").value(), kQueries);
  EXPECT_EQ(registry.GetHistogram("qp.query_cost").count(), kQueries);
  EXPECT_TRUE(IsValidJson(registry.SnapshotJson()));
}

TEST(ChromeTraceSinkTest, EmitsLoadableJsonArray) {
  std::ostringstream out;
  {
    obs::ChromeTraceSink sink(&out);
    obs::QueryEndEvent end;
    end.query_index = 0;
    end.t_us = 10;
    end.duration_us = 5;
    end.cost = 3.5;
    end.attempts = 4;
    end.success = true;
    sink.OnQueryEnd(end);
    obs::ClimbMoveEvent move;
    move.learner = "pib";
    move.swap = "swap <a,b>";
    move.t_us = 20;
    sink.OnClimbMove(move);
    obs::QuotaProgressEvent quota;
    quota.t_us = 30;
    quota.remaining_total = 12;
    sink.OnQuotaProgress(quota);
    sink.Flush();
  }
  std::string text = out.str();
  EXPECT_TRUE(IsValidJson(text)) << text;
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
}

TEST(NullObserverTest, ExecutionUnchangedByObservation) {
  // Observed and unobserved processors must produce identical traces on
  // identical context streams — instrumentation is read-only.
  Rng rng_a(5);
  Rng rng_b(5);
  RandomTree tree = MakeRandomTree(rng_a);
  MakeRandomTree(rng_b);  // keep the two streams aligned
  Strategy theta = Strategy::DepthFirst(tree.graph);
  IndependentOracle oracle(tree.probs);

  obs::MetricsRegistry registry;
  obs::Observer observer(&registry, nullptr);
  QueryProcessor plain(&tree.graph);
  QueryProcessor observed(&tree.graph, &observer);
  for (int i = 0; i < 200; ++i) {
    Context ctx_a = oracle.Next(rng_a);
    Context ctx_b = oracle.Next(rng_b);
    ASSERT_TRUE(ctx_a == ctx_b);
    Trace ta = plain.Execute(theta, ctx_a);
    Trace tb = observed.Execute(theta, ctx_b);
    ASSERT_EQ(ta.cost, tb.cost);
    ASSERT_EQ(ta.successes, tb.successes);
    ASSERT_EQ(ta.attempts.size(), tb.attempts.size());
  }
  EXPECT_EQ(registry.GetCounter("qp.queries").value(), 200);
}

/// A streambuf that accepts `limit` bytes, then fails every write — a
/// stand-in for a full disk or a closed pipe.
class FailingBuf : public std::streambuf {
 public:
  explicit FailingBuf(size_t limit) : limit_(limit) {}

 protected:
  int_type overflow(int_type ch) override {
    if (written_ >= limit_ || traits_type::eq_int_type(ch, traits_type::eof())) {
      return traits_type::eof();
    }
    ++written_;
    return ch;
  }
  std::streamsize xsputn(const char* /*s*/, std::streamsize n) override {
    if (written_ + static_cast<size_t>(n) > limit_) return 0;
    written_ += static_cast<size_t>(n);
    return n;
  }

 private:
  size_t limit_;
  size_t written_ = 0;
};

TEST(SinkFailureTest, JsonlSinkDisablesItselfOnWriteFailure) {
  FailingBuf buf(16);
  std::ostream out(&buf);
  obs::JsonlSink sink(&out);
  ASSERT_FALSE(sink.failed());
  // The first event overflows the 16-byte budget; the sink must latch
  // failed() and swallow everything after without crashing.
  for (int i = 0; i < 50; ++i) {
    sink.OnQueryEnd({i, 0, 10, 2.5, 4, 1, true});
    sink.Flush();
  }
  EXPECT_TRUE(sink.failed());
  sink.Close();  // must also be a safe no-op on a failed sink
}

TEST(SinkFailureTest, ChromeSinkNeverFinalisesAFailedStream) {
  FailingBuf buf(4);  // fails during the opening "[\n"
  std::ostream out(&buf);
  {
    obs::ChromeTraceSink sink(&out);
    for (int i = 0; i < 20; ++i) {
      sink.OnQueryEnd({i, 0, 10, 2.5, 4, 1, true});
    }
    EXPECT_TRUE(sink.failed());
  }  // destructor: a failed sink must not write the closing "]"
}

TEST(SinkFailureTest, RobustnessEventsSerializeAsJsonl) {
  std::ostringstream out;
  obs::JsonlSink sink(&out);
  sink.OnRetry({100, 7, 3, 0, "transient", 1, 0.25, false});
  sink.OnRetry({110, 7, 3, 0, "timeout", 3, 0.0, true});
  sink.OnBreaker({120, 7, 3, 0, "open", 8, 40});
  sink.OnDegraded({130, 9, 12.5, 10.0, 6});
  sink.Flush();
  std::string text = out.str();
  for (const std::string& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    EXPECT_TRUE(IsValidJson(line)) << line;
  }
  EXPECT_NE(text.find("\"type\":\"retry\""), std::string::npos);
  EXPECT_NE(text.find("\"gave_up\":true"), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"breaker\""), std::string::npos);
  EXPECT_NE(text.find("\"state\":\"open\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"degraded\""), std::string::npos);
}

TEST(SinkDropTest, JsonlSinkCountsEventsDroppedAfterClose) {
  std::ostringstream out;
  obs::MetricsRegistry registry;
  obs::Counter* dropped = &registry.GetCounter("obs.trace_events_dropped");
  obs::JsonlSink sink(&out);
  sink.set_drop_counter(dropped);
  sink.OnQueryEnd({0, 10, 5, 2.5, 4, 1, true});
  sink.Close();
  const std::string closed_text = out.str();
  ASSERT_EQ(sink.events_dropped(), 0);
  // Everything after Close() is dropped, counted, and leaves the
  // finalised output untouched.
  sink.OnQueryEnd({1, 20, 5, 2.5, 4, 1, true});
  sink.OnClimbMove({30, "pib", 0, 1, 8, "swap", 1.0, 0.5, 0.5, 0.01});
  sink.OnArcAttempt({1, 40, 3, 0, true, 1.5});
  EXPECT_EQ(sink.events_dropped(), 3);
  EXPECT_EQ(dropped->value(), 3);
  EXPECT_EQ(out.str(), closed_text);
}

TEST(SinkDropTest, ChromeSinkCountsEventsDroppedAfterClose) {
  std::ostringstream out;
  obs::MetricsRegistry registry;
  obs::Counter* dropped = &registry.GetCounter("obs.trace_events_dropped");
  obs::ChromeTraceSink sink(&out);
  sink.set_drop_counter(dropped);
  sink.OnQueryEnd({0, 10, 5, 2.5, 4, 1, true});
  sink.Close();
  sink.OnQueryEnd({1, 20, 5, 2.5, 4, 1, true});
  sink.OnQueryEnd({2, 30, 5, 2.5, 4, 1, true});
  EXPECT_EQ(sink.events_dropped(), 2);
  EXPECT_EQ(dropped->value(), 2);
}

/// Collects replayed learner-decision events so round-trip tests can
/// compare them field-for-field against what was emitted.
struct CollectingSink final : public obs::TraceSink {
  std::vector<obs::ClimbMoveEvent> moves;
  std::vector<obs::SequentialTestEvent> tests;
  std::vector<obs::DecisionCertificateEvent> certificates;
  void OnClimbMove(const obs::ClimbMoveEvent& e) override {
    moves.push_back(e);
  }
  void OnSequentialTest(const obs::SequentialTestEvent& e) override {
    tests.push_back(e);
  }
  void OnDecisionCertificate(const obs::DecisionCertificateEvent& e) override {
    certificates.push_back(e);
  }
};

TEST(TraceReaderRoundTripTest, ClimbMoveDeltaSpentExactPrecision) {
  // delta_spent feeds the audit ledger, so the JSONL round trip must be
  // bit-exact; deliberately awkward doubles catch any lossy formatting.
  obs::ClimbMoveEvent e;
  e.t_us = 123456789;
  e.learner = "palo";
  e.move_index = 3;
  e.at_context = 4097;
  e.samples_used = 811;
  e.swap = "swap children 2<->5 under node 9";
  e.delta_sum = 0.1 + 0.2;
  e.threshold = 1.0 / 3.0;
  e.margin = (0.1 + 0.2) - 1.0 / 3.0;
  e.delta_spent = 0.05 * 6.0 / (M_PI * M_PI * 7.0 * 7.0);

  std::ostringstream out;
  obs::JsonlSink sink(&out);
  sink.OnClimbMove(e);
  sink.Flush();

  CollectingSink collected;
  obs::TraceReader reader(&collected);
  std::istringstream in(out.str());
  ASSERT_TRUE(reader.ReplayStream(in).ok());
  ASSERT_EQ(collected.moves.size(), 1u);
  const obs::ClimbMoveEvent& r = collected.moves[0];
  EXPECT_EQ(r.t_us, e.t_us);
  EXPECT_EQ(r.learner, e.learner);
  EXPECT_EQ(r.move_index, e.move_index);
  EXPECT_EQ(r.at_context, e.at_context);
  EXPECT_EQ(r.samples_used, e.samples_used);
  EXPECT_EQ(r.swap, e.swap);
  EXPECT_EQ(r.delta_sum, e.delta_sum);
  EXPECT_EQ(r.threshold, e.threshold);
  EXPECT_EQ(r.margin, e.margin);
  EXPECT_EQ(r.delta_spent, e.delta_spent);
}

TEST(TraceReaderRoundTripTest, SequentialTestEventExactPrecision) {
  obs::SequentialTestEvent e;
  e.t_us = 987654321;
  e.learner = "pib";
  e.at_context = 511;
  e.samples = 129;
  e.trial_count = 17;
  e.best_neighbor = 6;
  e.best_delta_sum = 2.0 / 3.0;
  e.best_threshold = std::sqrt(2.0) * 100.0;
  e.fired = true;

  std::ostringstream out;
  obs::JsonlSink sink(&out);
  sink.OnSequentialTest(e);
  sink.Flush();

  CollectingSink collected;
  obs::TraceReader reader(&collected);
  std::istringstream in(out.str());
  ASSERT_TRUE(reader.ReplayStream(in).ok());
  ASSERT_EQ(collected.tests.size(), 1u);
  const obs::SequentialTestEvent& r = collected.tests[0];
  EXPECT_EQ(r.t_us, e.t_us);
  EXPECT_EQ(r.learner, e.learner);
  EXPECT_EQ(r.at_context, e.at_context);
  EXPECT_EQ(r.samples, e.samples);
  EXPECT_EQ(r.trial_count, e.trial_count);
  EXPECT_EQ(r.best_neighbor, e.best_neighbor);
  EXPECT_EQ(r.best_delta_sum, e.best_delta_sum);
  EXPECT_EQ(r.best_threshold, e.best_threshold);
  EXPECT_EQ(r.fired, e.fired);
}

TEST(TraceReaderRoundTripTest, DecisionCertificateExactPrecision) {
  obs::DecisionCertificateEvent e;
  e.t_us = 42;
  e.learner = "pib";
  e.decision = "climb";
  e.verdict = "commit";
  e.at_context = 300;
  e.samples = 96;
  e.trials = 12;
  e.subject = 4;
  e.mean = 1.0 / 7.0;
  e.delta_sum = 96.0 / 7.0;
  e.threshold = 0.1 + 0.2;
  e.margin = 96.0 / 7.0 - (0.1 + 0.2);
  e.range = 4.0;
  e.epsilon_n = std::sqrt(3.0) / 10.0;
  e.delta_step = 0.05 * 6.0 / (M_PI * M_PI * 144.0);
  e.delta_budget = 0.05;
  e.delta_spent_total = 0.05 / 3.0;
  e.bound_samples = 2048;
  e.epsilon = 0.0;

  std::ostringstream out;
  obs::JsonlSink sink(&out);
  sink.OnDecisionCertificate(e);
  sink.Flush();

  CollectingSink collected;
  obs::TraceReader reader(&collected);
  std::istringstream in(out.str());
  ASSERT_TRUE(reader.ReplayStream(in).ok());
  ASSERT_EQ(collected.certificates.size(), 1u);
  const obs::DecisionCertificateEvent& r = collected.certificates[0];
  EXPECT_EQ(r.t_us, e.t_us);
  EXPECT_EQ(r.learner, e.learner);
  EXPECT_EQ(r.decision, e.decision);
  EXPECT_EQ(r.verdict, e.verdict);
  EXPECT_EQ(r.at_context, e.at_context);
  EXPECT_EQ(r.samples, e.samples);
  EXPECT_EQ(r.trials, e.trials);
  EXPECT_EQ(r.subject, e.subject);
  EXPECT_EQ(r.mean, e.mean);
  EXPECT_EQ(r.delta_sum, e.delta_sum);
  EXPECT_EQ(r.threshold, e.threshold);
  EXPECT_EQ(r.margin, e.margin);
  EXPECT_EQ(r.range, e.range);
  EXPECT_EQ(r.epsilon_n, e.epsilon_n);
  EXPECT_EQ(r.delta_step, e.delta_step);
  EXPECT_EQ(r.delta_budget, e.delta_budget);
  EXPECT_EQ(r.delta_spent_total, e.delta_spent_total);
  EXPECT_EQ(r.bound_samples, e.bound_samples);
  EXPECT_EQ(r.epsilon, e.epsilon);
}

}  // namespace
}  // namespace stratlearn
