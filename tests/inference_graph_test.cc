#include "graph/inference_graph.h"

#include <gtest/gtest.h>

#include "graph/examples.h"
#include "util/math_util.h"

namespace stratlearn {
namespace {

TEST(InferenceGraphTest, FigureOneShape) {
  FigureOneGraph g = MakeFigureOne();
  EXPECT_EQ(g.graph.num_nodes(), 5u);  // root, prof, grad, two boxes
  EXPECT_EQ(g.graph.num_arcs(), 4u);
  EXPECT_EQ(g.graph.num_experiments(), 2u);
  EXPECT_TRUE(g.graph.Validate().ok());
  // Experiments are D_p then D_g, in construction order.
  EXPECT_EQ(g.graph.experiments()[0], g.d_p);
  EXPECT_EQ(g.graph.experiments()[1], g.d_g);
  // Reductions are deterministic.
  EXPECT_EQ(g.graph.ExperimentIndex(g.r_p), -1);
  EXPECT_EQ(g.graph.ExperimentIndex(g.d_p), 0);
}

TEST(InferenceGraphTest, FigureOneCostFunctions) {
  FigureOneGraph g = MakeFigureOne();
  // Note 5's worked values: f*(R_p) = f(R_p) + f(D_p) = 2, etc.
  EXPECT_DOUBLE_EQ(g.graph.FStar(g.r_p), 2.0);
  EXPECT_DOUBLE_EQ(g.graph.FStar(g.r_g), 2.0);
  EXPECT_DOUBLE_EQ(g.graph.FStar(g.d_p), 1.0);
  // F_not[D_g] = f(R_p) + f(D_p) = 2; F_not[D_p] = f(R_g) + f(D_g) = 2.
  EXPECT_DOUBLE_EQ(g.graph.FNeg(g.d_g), 2.0);
  EXPECT_DOUBLE_EQ(g.graph.FNeg(g.d_p), 2.0);
  EXPECT_DOUBLE_EQ(g.graph.TotalCost(), 4.0);
}

TEST(InferenceGraphTest, FigureTwoShape) {
  FigureTwoGraph g = MakeFigureTwo();
  EXPECT_EQ(g.graph.num_arcs(), 10u);
  EXPECT_EQ(g.graph.num_experiments(), 4u);
  EXPECT_TRUE(g.graph.Validate().ok());
}

TEST(InferenceGraphTest, FigureTwoCostFunctions) {
  FigureTwoGraph g = MakeFigureTwo();
  // f*(R_gs) covers R_gs, R_sb, D_b, R_st, R_tc, D_c, R_td, D_d = 8 arcs.
  EXPECT_DOUBLE_EQ(g.graph.FStar(g.r_gs), 8.0);
  EXPECT_DOUBLE_EQ(g.graph.FStar(g.r_st), 5.0);
  EXPECT_DOUBLE_EQ(g.graph.FStar(g.r_tc), 2.0);
  EXPECT_DOUBLE_EQ(g.graph.FStar(g.d_d), 1.0);
  // F_not[D_d]: total 10 minus Pi(D_d) = {R_gs, R_st, R_td} (3) minus
  // f*(D_d) = 1 -> 6.
  EXPECT_DOUBLE_EQ(g.graph.FNeg(g.d_d), 6.0);
}

TEST(InferenceGraphTest, PiIsRootPath) {
  FigureTwoGraph g = MakeFigureTwo();
  std::vector<ArcId> pi = g.graph.Pi(g.d_c);
  ASSERT_EQ(pi.size(), 3u);
  EXPECT_EQ(pi[0], g.r_gs);
  EXPECT_EQ(pi[1], g.r_st);
  EXPECT_EQ(pi[2], g.r_tc);
  EXPECT_TRUE(g.graph.Pi(g.r_ga).empty());
}

TEST(InferenceGraphTest, SubtreeArcs) {
  FigureTwoGraph g = MakeFigureTwo();
  std::vector<ArcId> sub = g.graph.SubtreeArcs(g.r_st);
  // R_st, R_tc, D_c, R_td, D_d.
  EXPECT_EQ(sub.size(), 5u);
  EXPECT_EQ(sub[0], g.r_st);
}

TEST(InferenceGraphTest, ArcDepth) {
  FigureTwoGraph g = MakeFigureTwo();
  EXPECT_EQ(g.graph.ArcDepth(g.r_ga), 0);
  EXPECT_EQ(g.graph.ArcDepth(g.d_a), 1);
  EXPECT_EQ(g.graph.ArcDepth(g.d_c), 3);
}

TEST(InferenceGraphTest, AllFStarMatchesPerArc) {
  FigureTwoGraph g = MakeFigureTwo();
  std::vector<double> all = g.graph.AllFStar();
  for (ArcId a = 0; a < g.graph.num_arcs(); ++a) {
    EXPECT_TRUE(AlmostEqual(all[a], g.graph.FStar(a))) << "arc " << a;
  }
}

TEST(InferenceGraphTest, RetrievalAndSuccessArcs) {
  FigureTwoGraph g = MakeFigureTwo();
  std::vector<ArcId> retrievals = g.graph.RetrievalArcs();
  std::vector<ArcId> successes = g.graph.SuccessArcs();
  EXPECT_EQ(retrievals.size(), 4u);
  EXPECT_EQ(successes, retrievals);  // all retrievals end in boxes here
}

TEST(InferenceGraphTest, GuardedReductionIsExperiment) {
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  auto guarded = g.AddChild(root, "sub", ArcKind::kReduction, 1.0, "guard",
                            /*is_experiment=*/true);
  g.AddRetrieval(guarded.node, 1.0, "d");
  EXPECT_EQ(g.num_experiments(), 2u);
  EXPECT_EQ(g.ExperimentIndex(guarded.arc), 0);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(InferenceGraphTest, ToDotContainsStructure) {
  FigureOneGraph g = MakeFigureOne();
  std::string dot = g.graph.ToDot("GA");
  EXPECT_NE(dot.find("digraph GA"), std::string::npos);
  EXPECT_NE(dot.find("R_p"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(InferenceGraphTest, ValidateCatchesNoRoot) {
  InferenceGraph g;
  EXPECT_FALSE(g.Validate().ok());
}

TEST(InferenceGraphDeathTest, SuccessNodesCannotHaveChildren) {
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  auto box = g.AddRetrieval(root, 1.0, "d");
  EXPECT_DEATH(g.AddChild(box.node, "x", ArcKind::kReduction, 1.0, "r"),
               "success");
}

TEST(InferenceGraphDeathTest, NonPositiveCostRejected) {
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  EXPECT_DEATH(g.AddChild(root, "x", ArcKind::kReduction, 0.0, "r"),
               "positive");
}

}  // namespace
}  // namespace stratlearn
