#include "util/string_util.h"

#include <gtest/gtest.h>

#include "util/math_util.h"

namespace stratlearn {
namespace {

TEST(SplitTest, Basic) {
  std::vector<std::string> parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyPieces) {
  std::vector<std::string> parts = Split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(SplitTest, EmptyInput) {
  std::vector<std::string> parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, RemovesWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("instructor", "inst"));
  EXPECT_FALSE(StartsWith("inst", "instructor"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_arg(500, 'z');
  std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 502u);
}

TEST(FormatDoubleTest, TrimsZeros) {
  EXPECT_EQ(FormatDouble(3.7), "3.7");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(0.012, 2), "0.012");
}

TEST(MathUtilTest, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 + 1.0, 1e-9));
}

TEST(MathUtilTest, ClampProbability) {
  EXPECT_EQ(ClampProbability(-0.5), 0.0);
  EXPECT_EQ(ClampProbability(1.5), 1.0);
  EXPECT_EQ(ClampProbability(0.25), 0.25);
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(1, 100), 1);
}

TEST(MathUtilTest, Factorial) {
  EXPECT_EQ(Factorial(0), 1u);
  EXPECT_EQ(Factorial(1), 1u);
  EXPECT_EQ(Factorial(5), 120u);
  EXPECT_EQ(Factorial(10), 3628800u);
}

}  // namespace
}  // namespace stratlearn
