#include "core/delta_estimator.h"

#include <gtest/gtest.h>

#include "core/transformations.h"
#include "graph/examples.h"
#include "workload/random_tree.h"

namespace stratlearn {
namespace {

TEST(DeltaEstimatorTest, ExactDeltaOnPaperContexts) {
  FigureOneGraph g = MakeFigureOne();
  DeltaEstimator estimator(&g.graph);
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Strategy theta2 = Strategy::FromLeafOrder(g.graph, {g.d_g, g.d_p});
  // I_1 (manolis): c(T1) = 4, c(T2) = 2 -> Delta = 2.
  Context i1(2);
  i1.Set(1, true);
  EXPECT_DOUBLE_EQ(estimator.ExactDelta(theta1, theta2, i1), 2.0);
  // I_2 (russ): Delta = 2 - 4 = -2.
  Context i2(2);
  i2.Set(0, true);
  EXPECT_DOUBLE_EQ(estimator.ExactDelta(theta1, theta2, i2), -2.0);
}

TEST(DeltaEstimatorTest, PaperUnderEstimateCases) {
  // Section 3.1's three cases for Theta_1 vs Theta_2 on G_A:
  //  * solution under R_g only: Delta~ = f*(R_p) = 2 (and is exact);
  //  * no solution anywhere: Delta~ = 0;
  //  * solution under R_p: Delta~ = -f*(R_g) = -2 (the pessimistic
  //    value; the true Delta is -2 or +... >= -2).
  FigureOneGraph g = MakeFigureOne();
  DeltaEstimator estimator(&g.graph);
  QueryProcessor qp(&g.graph);
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Strategy theta2 = Strategy::FromLeafOrder(g.graph, {g.d_g, g.d_p});

  Context grad_only(2);
  grad_only.Set(1, true);
  EXPECT_DOUBLE_EQ(
      estimator.UnderEstimate(qp.Execute(theta1, grad_only), theta2), 2.0);

  Context none(2);
  EXPECT_DOUBLE_EQ(estimator.UnderEstimate(qp.Execute(theta1, none), theta2),
                   0.0);

  Context prof_only(2);
  prof_only.Set(0, true);
  EXPECT_DOUBLE_EQ(
      estimator.UnderEstimate(qp.Execute(theta1, prof_only), theta2), -2.0);
  // With both facts present the trace is identical (D_g unobserved), so
  // the pessimistic estimate is the same -2 although true Delta = 0.
  Context both = Context::AllUnblocked(2);
  EXPECT_DOUBLE_EQ(
      estimator.UnderEstimate(qp.Execute(theta1, both), theta2), -2.0);
  EXPECT_DOUBLE_EQ(estimator.ExactDelta(theta1, theta2, both), 0.0);
}

TEST(DeltaEstimatorTest, FigureTwoSectionThreeTwoCase) {
  // Section 3.2: running Theta_ABCD in context I_c (first solution at
  // D_c, D_d unobserved), the under-estimate for Theta_ABDC is
  // -f*(R_td) = -2.
  FigureTwoGraph g = MakeFigureTwo();
  DeltaEstimator estimator(&g.graph);
  QueryProcessor qp(&g.graph);
  Strategy theta_abcd = Strategy::DepthFirst(g.graph);
  SiblingSwap tau_dc{g.graph.arc(g.r_tc).from, g.r_tc, g.r_td};
  Strategy theta_abdc = ApplySwap(g.graph, theta_abcd, tau_dc);

  Context i_c(4);
  i_c.Set(g.graph.ExperimentIndex(g.d_c), true);
  Trace trace = qp.Execute(theta_abcd, i_c);
  EXPECT_DOUBLE_EQ(estimator.UnderEstimate(trace, theta_abdc), -2.0);

  // And the paper's two exact values depending on D_d:
  Context with_d = i_c;
  with_d.Set(g.graph.ExperimentIndex(g.d_d), true);
  // Delta = f*(R_tc) - f*(R_td) = 0 when D_d is not blocked.
  EXPECT_DOUBLE_EQ(estimator.ExactDelta(theta_abcd, theta_abdc, with_d), 0.0);
  // Delta = -f*(R_td) = -2 when D_d is blocked.
  EXPECT_DOUBLE_EQ(estimator.ExactDelta(theta_abcd, theta_abdc, i_c), -2.0);
}

// The soundness property behind Theorem 1: for every context and every
// sibling-swap neighbour, UnderEstimate <= ExactDelta <= OverEstimate.
class DeltaSoundnessProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeltaSoundnessProperty, UnderAndOverBoundsHoldExhaustively) {
  Rng rng(3000 + GetParam());
  RandomTreeOptions options;
  options.depth = 2 + GetParam() % 2;
  options.internal_experiment_prob = (GetParam() % 3 == 0) ? 0.4 : 0.0;
  RandomTree tree = MakeRandomTree(rng, options);
  size_t n = tree.graph.num_experiments();
  if (n > 10) GTEST_SKIP() << "too large to enumerate";

  DeltaEstimator estimator(&tree.graph);
  QueryProcessor qp(&tree.graph);
  std::vector<ArcId> leaves = tree.graph.SuccessArcs();
  rng.Shuffle(leaves);
  Strategy theta = Strategy::FromLeafOrder(tree.graph, leaves);

  for (const SiblingSwap& swap : AllSiblingSwaps(tree.graph)) {
    Strategy alt = ApplySwap(tree.graph, theta, swap);
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      Context ctx = Context::FromMask(n, mask);
      Trace trace = qp.Execute(theta, ctx);
      double exact = estimator.ExactDelta(theta, alt, ctx);
      double under = estimator.UnderEstimate(trace, alt);
      double over = estimator.OverEstimate(trace, alt);
      EXPECT_LE(under, exact + 1e-9)
          << "mask=" << mask << " swap=" << swap.ToString(tree.graph);
      EXPECT_GE(over, exact - 1e-9)
          << "mask=" << mask << " swap=" << swap.ToString(tree.graph);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, DeltaSoundnessProperty,
                         ::testing::Range(0, 30));

TEST(DeltaEstimatorTest, UnderEstimateIsExactWhenEverythingObserved) {
  // When the trace observed every experiment (no solution anywhere), the
  // pessimistic completion is the true context.
  FigureTwoGraph g = MakeFigureTwo();
  DeltaEstimator estimator(&g.graph);
  QueryProcessor qp(&g.graph);
  Strategy theta = Strategy::DepthFirst(g.graph);
  Context none(4);
  Trace trace = qp.Execute(theta, none);
  for (const SiblingSwap& swap : AllSiblingSwaps(g.graph)) {
    Strategy alt = ApplySwap(g.graph, theta, swap);
    EXPECT_DOUBLE_EQ(estimator.UnderEstimate(trace, alt),
                     estimator.ExactDelta(theta, alt, none));
  }
}

}  // namespace
}  // namespace stratlearn
