#include <gtest/gtest.h>

#include "apps/kanswers.h"
#include "apps/naf.h"
#include "apps/segscan.h"
#include "core/expected_cost.h"
#include "core/pib.h"
#include "core/upsilon.h"
#include "datalog/parser.h"
#include "graph/examples.h"
#include "util/math_util.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

// ---- Segmented scan (Section 5.2) -------------------------------------

TEST(SegScanTest, GraphShapeAndProbs) {
  SegmentGraph sg = MakeSegmentGraph({{"east", 2.0, 0.5},
                                      {"west", 1.0, 0.3},
                                      {"archive", 8.0, 0.2}});
  EXPECT_EQ(sg.graph.num_arcs(), 3u);
  EXPECT_EQ(sg.graph.num_experiments(), 3u);
  EXPECT_EQ(sg.HitProbabilities(), (std::vector<double>{0.5, 0.3, 0.2}));
}

TEST(SegScanTest, OptimalOrderIsRatioOrder) {
  std::vector<Segment> segments = {{"east", 2.0, 0.5},    // 0.25
                                   {"west", 1.0, 0.3},    // 0.30
                                   {"archive", 8.0, 0.2}};  // 0.025
  std::vector<size_t> order = OptimalScanOrder(segments);
  EXPECT_EQ(order, (std::vector<size_t>{1, 0, 2}));
}

TEST(SegScanTest, OptimalOrderMatchesUpsilon) {
  Rng rng(1);
  std::vector<Segment> segments;
  for (int i = 0; i < 10; ++i) {
    segments.push_back({"s" + std::to_string(i),
                        rng.NextUniform(0.5, 4.0),
                        rng.NextUniform(0.01, 0.4)});
  }
  SegmentGraph sg = MakeSegmentGraph(segments);
  Result<UpsilonResult> upsilon =
      UpsilonAot(sg.graph, sg.HitProbabilities());
  ASSERT_TRUE(upsilon.ok());
  std::vector<size_t> ratio_order = OptimalScanOrder(segments);
  std::vector<ArcId> upsilon_leaves = upsilon->strategy.LeafOrder(sg.graph);
  ASSERT_EQ(upsilon_leaves.size(), ratio_order.size());
  double ratio_cost = 0.0;
  {
    std::vector<ArcId> leaves;
    for (size_t i : ratio_order) {
      leaves.push_back(sg.graph.SuccessArcs()[i]);
    }
    Strategy ratio_strategy = Strategy::FromLeafOrder(sg.graph, leaves);
    ratio_cost =
        ExactExpectedCost(sg.graph, ratio_strategy, sg.HitProbabilities());
  }
  EXPECT_TRUE(AlmostEqual(upsilon->expected_cost, ratio_cost, 1e-9));
}

TEST(SegScanTest, PibLearnsSkewedSegmentOrder) {
  // A workload concentrated on the last segment: PIB moves it forward.
  SegmentGraph sg = MakeSegmentGraph(
      {{"a", 1.0, 0.02}, {"b", 1.0, 0.02}, {"c", 1.0, 0.9}});
  Strategy initial = Strategy::DepthFirst(sg.graph);
  Pib pib(&sg.graph, initial, {.delta = 0.05});
  IndependentOracle oracle(sg.HitProbabilities());
  Rng rng(2);
  QueryProcessor qp(&sg.graph);
  for (int i = 0; i < 3000; ++i) {
    pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
  }
  std::vector<ArcId> order = pib.strategy().LeafOrder(sg.graph);
  EXPECT_EQ(order[0], sg.graph.SuccessArcs()[2]);  // segment "c" first
}

// ---- Negation as failure (Section 5.2) ---------------------------------

TEST(NafTest, PauperExample) {
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  ASSERT_TRUE(parser
                  .LoadProgram(
                      "owns(rich, yacht). owns(rich, car)."
                      "owns(modest, bicycle).",
                      &db, &rules)
                  .ok());
  NafEvaluator naf(&db, &rules);
  Result<Atom> rich_owns = parser.ParseAtom("owns(rich, X)");
  Result<Atom> poor_owns = parser.ParseAtom("owns(poor, X)");
  ASSERT_TRUE(rich_owns.ok() && poor_owns.ok());

  // pauper(X) :- not owns(X, Y): rich is not a pauper, poor is.
  Result<bool> rich_pauper = naf.Holds(*rich_owns, &symbols);
  ASSERT_TRUE(rich_pauper.ok());
  EXPECT_FALSE(*rich_pauper);
  Result<bool> poor_pauper = naf.Holds(*poor_owns, &symbols);
  ASSERT_TRUE(poor_pauper.ok());
  EXPECT_TRUE(*poor_pauper);
}

TEST(NafTest, SatisficingStopsAtFirstPossession) {
  // The paper's point: deciding "not pauper(rich)" needs only ONE owned
  // item, not the multitude.
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  std::string program;
  for (int i = 0; i < 100; ++i) {
    program += "owns(rich, item" + std::to_string(i) + ").";
  }
  ASSERT_TRUE(parser.LoadProgram(program, &db, &rules).ok());
  NafEvaluator naf(&db, &rules);
  Result<Atom> q = parser.ParseAtom("owns(rich, X)");
  ASSERT_TRUE(q.ok());
  Result<ProofResult> proof = naf.Prove(*q, &symbols);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(proof->proved);
  EXPECT_EQ(proof->answers_found, 1);
}

TEST(NafTest, BudgetExhaustionIsAnErrorNotAnAnswer) {
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  ASSERT_TRUE(
      parser.LoadProgram("loop(X) :- loop(X).", &db, &rules).ok());
  EvaluatorOptions options;
  options.max_depth = 1000000;
  options.max_steps = 100;
  NafEvaluator naf(&db, &rules, options);
  Result<Atom> q = parser.ParseAtom("loop(a)");
  ASSERT_TRUE(q.ok());
  Result<bool> holds = naf.Holds(*q, &symbols);
  EXPECT_FALSE(holds.ok());
}

// ---- First-k-answers (Section 5.2) -------------------------------------

TEST(KAnswersTest, StopsAfterK) {
  FigureTwoGraph g = MakeFigureTwo();
  KAnswersProcessor k2(&g.graph, 2);
  Context all = Context::AllUnblocked(4);
  Strategy theta = Strategy::DepthFirst(g.graph);
  Trace t = k2.Execute(theta, all);
  EXPECT_TRUE(t.success);
  EXPECT_EQ(t.successes, 2);
  // D_a (2 arcs) then D_b (3 more arcs): cost 5.
  EXPECT_DOUBLE_EQ(t.cost, 5.0);
}

TEST(KAnswersTest, ExpectedCostGrowsWithK) {
  FigureTwoGraph g = MakeFigureTwo();
  Strategy theta = Strategy::DepthFirst(g.graph);
  std::vector<double> probs = {0.5, 0.5, 0.5, 0.5};
  double c1 = EnumeratedExpectedCostK(g.graph, theta, probs, 1);
  double c2 = EnumeratedExpectedCostK(g.graph, theta, probs, 2);
  double c4 = EnumeratedExpectedCostK(g.graph, theta, probs, 4);
  EXPECT_LT(c1, c2);
  EXPECT_LT(c2, c4);
  // k = 1 matches the satisficing expected cost.
  EXPECT_TRUE(AlmostEqual(c1, ExactExpectedCost(g.graph, theta, probs)));
  // Needing every answer means exploring everything: total cost.
  EXPECT_DOUBLE_EQ(c4, g.graph.TotalCost());
}

TEST(KAnswersTest, MonteCarloMatchesEnumeration) {
  FigureTwoGraph g = MakeFigureTwo();
  Strategy theta = Strategy::DepthFirst(g.graph);
  std::vector<double> probs = {0.3, 0.6, 0.4, 0.7};
  IndependentOracle oracle(probs);
  Rng rng(3);
  double exact = EnumeratedExpectedCostK(g.graph, theta, probs, 2);
  double mc =
      MonteCarloExpectedCostK(g.graph, theta, oracle, 2, 100000, rng);
  EXPECT_NEAR(mc, exact, 0.05);
}

}  // namespace
}  // namespace stratlearn
