#include <gtest/gtest.h>

#include "andor/and_or_pao.h"
#include "andor/and_or_pib.h"
#include "andor/and_or_strategy.h"
#include "andor/and_or_upsilon.h"
#include "stats/chernoff.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

/// OR(AND(a, b), c): the rule "goal :- a, b." plus the rule "goal :- c."
struct ConjunctiveGraph {
  AndOrGraph graph;
  AndOrNodeId or_node, and_node, a, b, c;
};

ConjunctiveGraph MakeConjunctive(double ca = 1.0, double cb = 1.0,
                                 double cc = 1.0) {
  ConjunctiveGraph g;
  g.or_node = g.graph.AddRoot(AndOrKind::kOr, "goal");
  g.and_node = g.graph.AddInternal(g.or_node, AndOrKind::kAnd, "rule1");
  g.a = g.graph.AddLeaf(g.and_node, "a", ca);
  g.b = g.graph.AddLeaf(g.and_node, "b", cb);
  g.c = g.graph.AddLeaf(g.or_node, "c", cc);
  return g;
}

TEST(AndOrGraphTest, StructureAndValidation) {
  ConjunctiveGraph g = MakeConjunctive();
  EXPECT_EQ(g.graph.num_nodes(), 5u);
  EXPECT_EQ(g.graph.num_experiments(), 3u);
  EXPECT_TRUE(g.graph.Validate().ok());
  EXPECT_DOUBLE_EQ(g.graph.TotalLeafCost(), 3.0);
  EXPECT_EQ(g.graph.node(g.a).experiment, 0);
  EXPECT_EQ(g.graph.node(g.c).experiment, 2);
}

TEST(AndOrGraphTest, ValidateCatchesEmptyInternal) {
  AndOrGraph g;
  g.AddRoot(AndOrKind::kOr, "goal");
  EXPECT_FALSE(g.Validate().ok());
}

TEST(AndOrGraphTest, ToDotRendersKinds) {
  ConjunctiveGraph g = MakeConjunctive();
  std::string dot = g.graph.ToDot();
  EXPECT_NE(dot.find("triangle"), std::string::npos);  // AND
  EXPECT_NE(dot.find("box"), std::string::npos);       // leaves
}

TEST(AndOrExecutionTest, AndFailsFast) {
  ConjunctiveGraph g = MakeConjunctive();
  AndOrStrategy theta = AndOrStrategy::Default(g.graph);
  AndOrProcessor processor(&g.graph);

  // a fails: b is never attempted, falls through to c.
  Context ctx(3);
  ctx.Set(2, true);  // c succeeds
  AndOrTrace trace = processor.Execute(theta, ctx);
  EXPECT_TRUE(trace.success);
  EXPECT_DOUBLE_EQ(trace.cost, 2.0);  // a then c; b skipped
  ASSERT_EQ(trace.attempts.size(), 2u);
  EXPECT_EQ(trace.attempts[0].leaf, g.a);
  EXPECT_EQ(trace.attempts[1].leaf, g.c);
}

TEST(AndOrExecutionTest, AndNeedsAllConjuncts) {
  ConjunctiveGraph g = MakeConjunctive();
  AndOrStrategy theta = AndOrStrategy::Default(g.graph);
  AndOrProcessor processor(&g.graph);

  // a and b succeed: the AND satisfies the OR; c never attempted.
  Context ctx(3);
  ctx.Set(0, true);
  ctx.Set(1, true);
  AndOrTrace trace = processor.Execute(theta, ctx);
  EXPECT_TRUE(trace.success);
  EXPECT_DOUBLE_EQ(trace.cost, 2.0);

  // a succeeds but b fails: AND fails after paying both, c tried.
  Context ctx2(3);
  ctx2.Set(0, true);
  AndOrTrace trace2 = processor.Execute(theta, ctx2);
  EXPECT_FALSE(trace2.success);
  EXPECT_DOUBLE_EQ(trace2.cost, 3.0);
}

TEST(AndOrExecutionTest, StrategyReordersConjuncts) {
  ConjunctiveGraph g = MakeConjunctive();
  // Try b before a inside the AND.
  AndOrStrategy theta =
      AndOrStrategy::Default(g.graph).WithSwappedChildren(g.and_node, 0, 1);
  ASSERT_TRUE(theta.Validate(g.graph).ok());
  AndOrProcessor processor(&g.graph);
  Context ctx(3);  // everything fails
  AndOrTrace trace = processor.Execute(theta, ctx);
  EXPECT_EQ(trace.attempts[0].leaf, g.b);
}

TEST(AndOrExpectedCostTest, HandComputedConjunctive) {
  ConjunctiveGraph g = MakeConjunctive();
  std::vector<double> probs = {0.5, 0.8, 0.3};  // a, b, c
  AndOrStrategy theta = AndOrStrategy::Default(g.graph);
  // AND(a, b): C = 1 + 0.5 * 1 = 1.5, P = 0.4.
  // OR(AND, c): C = 1.5 + (1 - 0.4) * 1 = 2.1.
  EXPECT_NEAR(AndOrExactExpectedCost(g.graph, theta, probs), 2.1, 1e-12);
  EXPECT_NEAR(AndOrEnumeratedExpectedCost(g.graph, theta, probs), 2.1,
              1e-12);
}

// Property: the O(|N|) recursion agrees with exhaustive enumeration on
// random AND/OR trees and random strategies.
class AndOrCostProperty : public ::testing::TestWithParam<int> {};

AndOrGraph MakeRandomAndOr(Rng& rng, std::vector<double>* probs,
                           int max_leaves = 10) {
  AndOrGraph g;
  AndOrNodeId root = g.AddRoot(AndOrKind::kOr, "goal");
  int leaves = 0;
  // Two levels of random AND/OR structure.
  int top = 2 + static_cast<int>(rng.NextBounded(2));
  for (int i = 0; i < top && leaves < max_leaves; ++i) {
    if (rng.NextBernoulli(0.5)) {
      AndOrKind kind =
          rng.NextBernoulli(0.5) ? AndOrKind::kAnd : AndOrKind::kOr;
      AndOrNodeId inner = g.AddInternal(root, kind, "n" + std::to_string(i));
      int kids = 2 + static_cast<int>(rng.NextBounded(2));
      for (int k = 0; k < kids && leaves < max_leaves; ++k) {
        g.AddLeaf(inner, "l", rng.NextUniform(0.5, 2.0));
        ++leaves;
      }
    } else {
      g.AddLeaf(root, "l", rng.NextUniform(0.5, 2.0));
      ++leaves;
    }
  }
  // Internal nodes created childless (when the leaf budget ran out) are
  // impossible by construction: every AddInternal is followed by >= 1
  // leaf unless the budget hit 0 — guard for that corner.
  if (!g.Validate().ok()) {
    // Rebuild trivially with two leaves.
    AndOrGraph fixed;
    AndOrNodeId r = fixed.AddRoot(AndOrKind::kOr, "goal");
    fixed.AddLeaf(r, "x", 1.0);
    fixed.AddLeaf(r, "y", 1.0);
    g = std::move(fixed);
    leaves = 2;
  }
  probs->clear();
  for (size_t i = 0; i < g.num_experiments(); ++i) {
    probs->push_back(rng.NextUniform(0.05, 0.95));
  }
  return g;
}

TEST_P(AndOrCostProperty, RecursionMatchesEnumeration) {
  Rng rng(12000 + GetParam());
  std::vector<double> probs;
  AndOrGraph g = MakeRandomAndOr(rng, &probs);
  AndOrStrategy theta = AndOrStrategy::Default(g);
  // Randomly permute a few child orders.
  for (AndOrNodeId n = 0; n < g.num_nodes(); ++n) {
    size_t size = theta.OrderAt(n).size();
    if (size >= 2 && rng.NextBernoulli(0.7)) {
      theta = theta.WithSwappedChildren(
          n, rng.NextBounded(size), rng.NextBounded(size));
    }
  }
  double fast = AndOrExactExpectedCost(g, theta, probs);
  double enumerated = AndOrEnumeratedExpectedCost(g, theta, probs);
  EXPECT_TRUE(AlmostEqual(fast, enumerated, 1e-9))
      << "fast=" << fast << " enum=" << enumerated;
}

INSTANTIATE_TEST_SUITE_P(RandomAndOr, AndOrCostProperty,
                         ::testing::Range(0, 40));

TEST(AndOrOptimalTest, ConjunctOrderingBySelectivityOverCost) {
  // Classic DB wisdom, emerging from the cost model: inside an AND, try
  // the conjunct with the best chance of *failing* per unit cost first.
  AndOrGraph g;
  AndOrNodeId root = g.AddRoot(AndOrKind::kAnd, "join");
  g.AddLeaf(root, "selective", 1.0);   // p = 0.1: usually fails
  g.AddLeaf(root, "permissive", 1.0);  // p = 0.9
  std::vector<double> probs = {0.1, 0.9};
  Result<AndOrOptimalResult> best = AndOrBruteForceOptimal(g, probs);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->strategy.OrderAt(root)[0], g.experiments()[0]);
  // selective-first: 1 + 0.1*1 = 1.1; permissive-first: 1 + 0.9 = 1.9.
  EXPECT_NEAR(best->cost, 1.1, 1e-12);
}

TEST(AndOrOptimalTest, BruteForceBudgetEnforced) {
  AndOrGraph g;
  AndOrNodeId root = g.AddRoot(AndOrKind::kOr, "goal");
  for (int i = 0; i < 9; ++i) g.AddLeaf(root, "l", 1.0);
  std::vector<double> probs(9, 0.5);
  Result<AndOrOptimalResult> r = AndOrBruteForceOptimal(g, probs, 1000);
  EXPECT_FALSE(r.ok());  // 9! = 362880 > 1000
}

TEST(AndOrPibTest, LearnsConjunctOrder) {
  // OR(AND(expensive-permissive, cheap-selective), fallback): PIB should
  // move the selective conjunct first inside the AND.
  AndOrGraph g;
  AndOrNodeId root = g.AddRoot(AndOrKind::kOr, "goal");
  AndOrNodeId conj = g.AddInternal(root, AndOrKind::kAnd, "rule");
  g.AddLeaf(conj, "permissive", 3.0);
  AndOrNodeId selective = g.AddLeaf(conj, "selective", 1.0);
  g.AddLeaf(root, "fallback", 1.0);
  std::vector<double> probs = {0.9, 0.15, 0.5};

  AndOrPib pib(&g, AndOrStrategy::Default(g),
               AndOrPibOptions{.delta = 0.05});
  IndependentOracle oracle(probs);
  Rng rng(5);
  for (int i = 0; i < 6000; ++i) {
    pib.Observe(oracle.Next(rng));
  }
  EXPECT_GE(pib.moves().size(), 1u);
  EXPECT_EQ(pib.strategy().OrderAt(conj)[0], selective);
  double learned = AndOrExactExpectedCost(g, pib.strategy(), probs);
  double initial =
      AndOrExactExpectedCost(g, AndOrStrategy::Default(g), probs);
  EXPECT_LT(learned, initial);
}

TEST(AndOrPibTest, EveryMoveImprovesTrueCost) {
  Rng rng(6);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> probs;
    AndOrGraph g = MakeRandomAndOr(rng, &probs);
    AndOrPib pib(&g, AndOrStrategy::Default(g),
                 AndOrPibOptions{.delta = 0.05});
    IndependentOracle oracle(probs);
    double cost = AndOrExactExpectedCost(g, pib.strategy(), probs);
    for (int i = 0; i < 1500; ++i) {
      if (pib.Observe(oracle.Next(rng))) {
        double next = AndOrExactExpectedCost(g, pib.strategy(), probs);
        EXPECT_LT(next, cost + 1e-9) << "trial " << trial;
        cost = next;
      }
    }
  }
}

TEST(AndOrPibTest, MistakeRateUnderTies) {
  // All leaves identical: every move is (at best) a tie; a strict cost
  // increase must essentially never be confirmed.
  AndOrGraph g;
  AndOrNodeId root = g.AddRoot(AndOrKind::kOr, "goal");
  AndOrNodeId conj = g.AddInternal(root, AndOrKind::kAnd, "rule");
  g.AddLeaf(conj, "x", 1.0);
  g.AddLeaf(conj, "y", 1.0);
  g.AddLeaf(root, "z", 1.0);
  std::vector<double> probs = {0.5, 0.5, 0.5};

  Rng rng(7);
  int bad_runs = 0;
  for (int run = 0; run < 40; ++run) {
    AndOrPib pib(&g, AndOrStrategy::Default(g),
                 AndOrPibOptions{.delta = 0.1});
    IndependentOracle oracle(probs);
    double initial = AndOrExactExpectedCost(g, pib.strategy(), probs);
    for (int i = 0; i < 400; ++i) pib.Observe(oracle.Next(rng));
    if (AndOrExactExpectedCost(g, pib.strategy(), probs) > initial + 1e-9) {
      ++bad_runs;
    }
  }
  EXPECT_LE(bad_runs, 4);  // delta = 0.1 over 40 runs
}

TEST(AndOrUpsilonTest, MatchesHandComputedOrders) {
  // OR children sort by P/C descending; AND children by (1-P)/C.
  AndOrGraph g;
  AndOrNodeId root = g.AddRoot(AndOrKind::kAnd, "join");
  AndOrNodeId cheap_selective = g.AddLeaf(root, "sel", 1.0);   // (1-p)/c=.9
  AndOrNodeId pricey_selective = g.AddLeaf(root, "pri", 3.0);  // .3
  AndOrNodeId permissive = g.AddLeaf(root, "per", 1.0);        // .1
  std::vector<double> probs = {0.1, 0.1, 0.9};
  Result<AndOrUpsilonResult> r = AndOrUpsilon(g, probs);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // (1-P)/C ratios: sel 0.9, pri 0.3, per 0.1.
  EXPECT_EQ(r->strategy.OrderAt(root),
            (std::vector<AndOrNodeId>{cheap_selective, pricey_selective,
                                      permissive}));
  Result<AndOrOptimalResult> best = AndOrBruteForceOptimal(g, probs);
  ASSERT_TRUE(best.ok());
  EXPECT_TRUE(AlmostEqual(r->expected_cost, best->cost, 1e-9))
      << r->expected_cost << " vs " << best->cost;
}

TEST(AndOrUpsilonTest, RejectsBadInput) {
  ConjunctiveGraph g = MakeConjunctive();
  EXPECT_FALSE(AndOrUpsilon(g.graph, {0.5}).ok());
  EXPECT_FALSE(AndOrUpsilon(g.graph, {0.5, 1.5, 0.2}).ok());
}

// The central AND/OR property: the bottom-up ratio strategy matches the
// brute-force optimum over the whole depth-first class.
class AndOrUpsilonProperty : public ::testing::TestWithParam<int> {};

TEST_P(AndOrUpsilonProperty, MatchesBruteForce) {
  Rng rng(14000 + GetParam());
  std::vector<double> probs;
  AndOrGraph g = MakeRandomAndOr(rng, &probs, /*max_leaves=*/7);
  Result<AndOrUpsilonResult> fast = AndOrUpsilon(g, probs);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  // Cross-check the reported cost against the generic evaluator.
  EXPECT_TRUE(AlmostEqual(
      fast->expected_cost,
      AndOrExactExpectedCost(g, fast->strategy, probs), 1e-9));
  Result<AndOrOptimalResult> brute = AndOrBruteForceOptimal(g, probs);
  ASSERT_TRUE(brute.ok());
  EXPECT_TRUE(AlmostEqual(fast->expected_cost, brute->cost, 1e-9))
      << "fast=" << fast->expected_cost << " brute=" << brute->cost;
}

INSTANTIATE_TEST_SUITE_P(RandomAndOr, AndOrUpsilonProperty,
                         ::testing::Range(0, 60));

TEST(AndOrPaoTest, QuotasFollowEquationSevenAnalogue) {
  ConjunctiveGraph g = MakeConjunctive(1.0, 2.0, 3.0);
  AndOrPaoOptions options;
  options.epsilon = 1.0;
  options.delta = 0.1;
  std::vector<int64_t> quotas = AndOrPao::ComputeQuotas(g.graph, options);
  ASSERT_EQ(quotas.size(), 3u);
  // F_not(leaf) = total leaf cost (6) minus own cost.
  EXPECT_EQ(quotas[0], PaoRetrievalQuota(3, 5.0, 1.0, 0.1));
  EXPECT_EQ(quotas[1], PaoRetrievalQuota(3, 4.0, 1.0, 0.1));
  EXPECT_EQ(quotas[2], PaoRetrievalQuota(3, 3.0, 1.0, 0.1));
}

TEST(AndOrPaoTest, RecoversNearOptimalStrategy) {
  // The selective conjunct should end up first inside the AND.
  AndOrGraph g;
  AndOrNodeId root = g.AddRoot(AndOrKind::kOr, "goal");
  AndOrNodeId conj = g.AddInternal(root, AndOrKind::kAnd, "rule");
  g.AddLeaf(conj, "permissive", 2.0);
  AndOrNodeId selective = g.AddLeaf(conj, "selective", 1.0);
  g.AddLeaf(root, "fallback", 1.0);
  std::vector<double> probs = {0.9, 0.2, 0.5};

  IndependentOracle oracle(probs);
  Rng rng(21);
  AndOrPaoOptions options;
  options.epsilon = 0.8;
  options.delta = 0.1;
  Result<AndOrPaoResult> result = AndOrPao::Run(g, oracle, rng, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->strategy.OrderAt(conj)[0], selective);

  Result<AndOrOptimalResult> best = AndOrBruteForceOptimal(g, probs);
  ASSERT_TRUE(best.ok());
  double cost = AndOrExactExpectedCost(g, result->strategy, probs);
  EXPECT_LE(cost, best->cost + options.epsilon + 1e-9);
  // Estimates near truth for the frequently-attempted leaves.
  EXPECT_NEAR(result->estimates[0], 0.9, 0.1);
}

TEST(AndOrPaoTest, BlockedAimsPreventStalling) {
  // A conjunct that is almost never reached (its sibling usually fails
  // first) must not stall the sampler.
  AndOrGraph g;
  AndOrNodeId root = g.AddRoot(AndOrKind::kAnd, "goal");
  g.AddLeaf(root, "gate", 1.0);    // p = 0: always fails
  g.AddLeaf(root, "beyond", 1.0);  // reachable only when aimed at
  std::vector<double> probs = {0.0, 0.5};
  IndependentOracle oracle(probs);
  Rng rng(22);
  AndOrPaoOptions options;
  options.epsilon = 0.4;  // quota of a few hundred samples per leaf
  options.delta = 0.2;
  options.max_contexts = 500000;
  Result<AndOrPaoResult> result = AndOrPao::Run(g, oracle, rng, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 'beyond' got attempted whenever the sampler aimed at it (it then
  // comes first in the AND), so its estimate is real, not the fallback.
  EXPECT_NEAR(result->estimates[1], 0.5, 0.1);
}

TEST(AndOrPaoTest, EpsilonOptimalityRateOnRandomGraphs) {
  Rng rng(23);
  int violations = 0;
  const int runs = 10;
  const double delta = 0.2;
  for (int r = 0; r < runs; ++r) {
    std::vector<double> probs;
    AndOrGraph g = MakeRandomAndOr(rng, &probs, /*max_leaves=*/6);
    double epsilon = 0.3 * g.TotalLeafCost();
    IndependentOracle oracle(probs);
    Rng run_rng = rng.Fork();
    AndOrPaoOptions options;
    options.epsilon = epsilon;
    options.delta = delta;
    Result<AndOrPaoResult> result =
        AndOrPao::Run(g, oracle, run_rng, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    Result<AndOrOptimalResult> best = AndOrBruteForceOptimal(g, probs);
    ASSERT_TRUE(best.ok());
    double cost = AndOrExactExpectedCost(g, result->strategy, probs);
    if (cost > best->cost + epsilon) ++violations;
  }
  EXPECT_LE(violations, 2);  // delta = 0.2 over 10 runs
}

TEST(AndOrStrategyTest, ValidateRejectsForeignOrders) {
  ConjunctiveGraph g1 = MakeConjunctive();
  AndOrGraph other;
  AndOrNodeId r = other.AddRoot(AndOrKind::kOr, "goal");
  other.AddLeaf(r, "x", 1.0);
  AndOrStrategy theta = AndOrStrategy::Default(other);
  EXPECT_FALSE(theta.Validate(g1.graph).ok());
}

TEST(AndOrStrategyTest, ToStringShowsNonTrivialOrders) {
  ConjunctiveGraph g = MakeConjunctive();
  AndOrStrategy theta = AndOrStrategy::Default(g.graph);
  std::string s = theta.ToString(g.graph);
  EXPECT_NE(s.find("goal"), std::string::npos);
  EXPECT_NE(s.find("rule1"), std::string::npos);
}

}  // namespace
}  // namespace stratlearn
