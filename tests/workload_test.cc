#include <gtest/gtest.h>

#include "core/expected_cost.h"
#include "datalog/parser.h"
#include "workload/datalog_oracle.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

TEST(IndependentOracleTest, MatchesMarginals) {
  IndependentOracle oracle({0.6, 0.15, 1.0, 0.0});
  Rng rng(1);
  int counts[4] = {0, 0, 0, 0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    Context c = oracle.Next(rng);
    for (size_t e = 0; e < 4; ++e) {
      if (c.Unblocked(e)) ++counts[e];
    }
  }
  EXPECT_NEAR(counts[0] / double(n), 0.6, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.15, 0.01);
  EXPECT_EQ(counts[2], n);
  EXPECT_EQ(counts[3], 0);
}

TEST(MixtureOracleTest, MarginalsMatchFormula) {
  MixtureOracle oracle({{1.0, {1.0, 0.0}}, {3.0, {0.0, 1.0}}});
  std::vector<double> marginals = oracle.MarginalProbs();
  EXPECT_NEAR(marginals[0], 0.25, 1e-12);
  EXPECT_NEAR(marginals[1], 0.75, 1e-12);
  Rng rng(2);
  int both = 0, neither = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Context c = oracle.Next(rng);
    if (c.Unblocked(0) && c.Unblocked(1)) ++both;
    if (!c.Unblocked(0) && !c.Unblocked(1)) ++neither;
  }
  // Profiles are deterministic and exclusive: never both, never neither —
  // maximal dependence despite nontrivial marginals.
  EXPECT_EQ(both, 0);
  EXPECT_EQ(neither, 0);
}

TEST(DatalogOracleTest, SectionTwoWorkload) {
  // 60% instructor(russ), 15% instructor(manolis), 25% instructor(fred)
  // against DB_1 = {prof(russ), grad(manolis)}.
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  ASSERT_TRUE(parser
                  .LoadProgram(
                      "instructor(X) :- prof(X)."
                      "instructor(X) :- grad(X)."
                      "prof(russ). grad(manolis).",
                      &db, &rules)
                  .ok());
  Result<QueryForm> form = QueryForm::Parse("instructor(b)", &symbols);
  ASSERT_TRUE(form.ok());
  Result<BuiltGraph> built = BuildInferenceGraph(rules, *form, &symbols);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  QueryWorkload workload;
  workload.entries.push_back({{symbols.Intern("russ")}, 0.60});
  workload.entries.push_back({{symbols.Intern("manolis")}, 0.15});
  workload.entries.push_back({{symbols.Intern("fred")}, 0.25});
  DatalogOracle oracle(&built.value(), &db, workload);

  // True marginals: D_p succeeds exactly for russ (0.6), D_g exactly for
  // manolis (0.15).
  std::vector<double> p = oracle.TrueMarginalProbs();
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0], 0.60, 1e-12);
  EXPECT_NEAR(p[1], 0.15, 1e-12);

  // Deterministic per-query contexts.
  Context russ = oracle.ContextFor({symbols.Intern("russ")});
  EXPECT_TRUE(russ.Unblocked(0));
  EXPECT_FALSE(russ.Unblocked(1));
  Context fred = oracle.ContextFor({symbols.Intern("fred")});
  EXPECT_FALSE(fred.Unblocked(0));
  EXPECT_FALSE(fred.Unblocked(1));

  // Sampling respects the weights.
  Rng rng(7);
  int prof_hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (oracle.Next(rng).Unblocked(0)) ++prof_hits;
  }
  EXPECT_NEAR(prof_hits / double(n), 0.6, 0.02);
}

TEST(DatalogOracleTest, GuardedExperimentEvaluation) {
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  ASSERT_TRUE(parser
                  .LoadProgram(
                      "grad(X) :- enrolled(X)."
                      "grad(fred) :- admitted(fred, Y)."
                      "admitted(fred, csc).",
                      &db, &rules)
                  .ok());
  Result<QueryForm> form = QueryForm::Parse("grad(b)", &symbols);
  ASSERT_TRUE(form.ok());
  Result<BuiltGraph> built = BuildInferenceGraph(rules, *form, &symbols);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_EQ(built->guards.size(), 1u);

  QueryWorkload workload;
  workload.entries.push_back({{symbols.Intern("fred")}, 1.0});
  DatalogOracle oracle(&built.value(), &db, workload);
  Context fred = oracle.ContextFor({symbols.Intern("fred")});
  Context russ = oracle.ContextFor({symbols.Intern("russ")});
  // Find the guard's experiment index.
  ArcId guard_arc = built->guards.begin()->first;
  int guard_exp = built->graph.ExperimentIndex(guard_arc);
  ASSERT_GE(guard_exp, 0);
  EXPECT_TRUE(fred.Unblocked(guard_exp));
  EXPECT_FALSE(russ.Unblocked(guard_exp));
}

TEST(DriftingOracleTest, RevertAtRestoresThePreDriftRegime) {
  DriftingOracle oracle({0.9, 0.2}, {0.1, 0.2}, /*drift_at=*/10);
  oracle.set_revert_at(25);
  EXPECT_EQ(oracle.revert_at(), 25);
  // Before / during / after the transient.
  EXPECT_EQ(oracle.ProbsAt(9), (std::vector<double>{0.9, 0.2}));
  EXPECT_EQ(oracle.ProbsAt(10), (std::vector<double>{0.1, 0.2}));
  EXPECT_EQ(oracle.ProbsAt(24), (std::vector<double>{0.1, 0.2}));
  EXPECT_EQ(oracle.ProbsAt(25), (std::vector<double>{0.9, 0.2}));
  EXPECT_EQ(oracle.ProbsAt(1000), (std::vector<double>{0.9, 0.2}));
}

TEST(DriftingOracleTest, RevertIsStepwiseEvenWithAForwardRamp) {
  DriftingOracle oracle({1.0, 0.0}, {0.0, 0.0}, /*drift_at=*/10,
                        /*ramp_len=*/10);
  oracle.set_revert_at(20);  // earliest legal revert: drift_at + ramp_len
  EXPECT_NEAR(oracle.ProbsAt(14)[0], 0.5, 1e-12);  // mid-ramp
  EXPECT_EQ(oracle.ProbsAt(19)[0], 0.0);
  // The revert is a step back to `before`, never a reverse ramp.
  EXPECT_EQ(oracle.ProbsAt(20)[0], 1.0);
}

TEST(DriftingOracleTest, RevertZeroDisarms) {
  DriftingOracle oracle({0.9}, {0.1}, /*drift_at=*/5);
  oracle.set_revert_at(8);
  oracle.set_revert_at(0);
  EXPECT_EQ(oracle.ProbsAt(100), (std::vector<double>{0.1}));
}

TEST(DriftingOracleTest, DrawsFollowTheRevertedDistribution) {
  DriftingOracle oracle({1.0}, {0.0}, /*drift_at=*/5);
  oracle.set_revert_at(10);
  Rng rng(3);
  int unblocked = 0;
  for (int i = 0; i < 15; ++i) {
    if (oracle.Next(rng).Unblocked(0)) ++unblocked;
  }
  EXPECT_EQ(oracle.draws(), 15);
  // Draws 0-4 and 10-14 are certain successes, 5-9 certain failures.
  EXPECT_EQ(unblocked, 10);
}

TEST(RandomTreeTest, ProducesValidGraphs) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    RandomTree tree = MakeRandomTree(rng);
    EXPECT_TRUE(tree.graph.Validate().ok());
    EXPECT_GE(tree.graph.SuccessArcs().size(), 2u);
    EXPECT_EQ(tree.probs.size(), tree.graph.num_experiments());
    for (double p : tree.probs) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
    // Default options: no internal experiments.
    EXPECT_TRUE(IsLeafOnlyExperiments(tree.graph));
  }
}

TEST(RandomTreeTest, InternalExperimentsWhenRequested) {
  Rng rng(13);
  RandomTreeOptions options;
  options.internal_experiment_prob = 1.0;
  options.depth = 3;
  options.early_leaf_prob = 0.0;
  bool saw_internal = false;
  for (int i = 0; i < 20 && !saw_internal; ++i) {
    RandomTree tree = MakeRandomTree(rng, options);
    saw_internal = !IsLeafOnlyExperiments(tree.graph);
  }
  EXPECT_TRUE(saw_internal);
}

TEST(RandomTreeTest, FlatTreeShape) {
  Rng rng(17);
  RandomTree tree = MakeFlatTree(rng, 12);
  EXPECT_EQ(tree.graph.num_arcs(), 12u);
  EXPECT_EQ(tree.graph.SuccessArcs().size(), 12u);
  EXPECT_EQ(tree.probs.size(), 12u);
}

TEST(RandomTreeTest, DeterministicForSeed) {
  Rng rng1(23), rng2(23);
  RandomTree a = MakeRandomTree(rng1);
  RandomTree b = MakeRandomTree(rng2);
  EXPECT_EQ(a.graph.num_arcs(), b.graph.num_arcs());
  EXPECT_EQ(a.probs, b.probs);
}

}  // namespace
}  // namespace stratlearn
