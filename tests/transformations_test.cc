#include "core/transformations.h"

#include <gtest/gtest.h>

#include "graph/examples.h"

namespace stratlearn {
namespace {

TEST(SiblingSwapTest, AllSwapsEnumerated) {
  FigureOneGraph ga = MakeFigureOne();
  // Only the root has two children.
  std::vector<SiblingSwap> swaps = AllSiblingSwaps(ga.graph);
  ASSERT_EQ(swaps.size(), 1u);
  EXPECT_EQ(swaps[0].arc_a, ga.r_p);
  EXPECT_EQ(swaps[0].arc_b, ga.r_g);

  FigureTwoGraph gb = MakeFigureTwo();
  // Root: (R_ga, R_gs); S: (R_sb, R_st); T: (R_tc, R_td).
  EXPECT_EQ(AllSiblingSwaps(gb.graph).size(), 3u);
}

TEST(SiblingSwapTest, SwapTurnsTheta1IntoTheta2) {
  FigureOneGraph g = MakeFigureOne();
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  SiblingSwap swap = AllSiblingSwaps(g.graph)[0];
  Strategy theta2 = ApplySwap(g.graph, theta1, swap);
  EXPECT_EQ(theta2.LeafOrder(g.graph), (std::vector<ArcId>{g.d_g, g.d_p}));
  // Applying twice restores the original.
  EXPECT_EQ(ApplySwap(g.graph, theta2, swap), theta1);
}

TEST(SiblingSwapTest, PaperSectionThreeTwoExamples) {
  FigureTwoGraph g = MakeFigureTwo();
  Strategy theta_abcd = Strategy::DepthFirst(g.graph);

  // tau_{d,c}: swap R_td and R_tc -> Theta_ABDC.
  SiblingSwap tau_dc{g.graph.arc(g.r_tc).from, g.r_tc, g.r_td};
  Strategy theta_abdc = ApplySwap(g.graph, theta_abcd, tau_dc);
  EXPECT_EQ(theta_abdc.LeafOrder(g.graph),
            (std::vector<ArcId>{g.d_a, g.d_b, g.d_d, g.d_c}));

  // Swapping R_sb with R_st -> Theta_ACDB.
  SiblingSwap tau_bt{g.graph.arc(g.r_sb).from, g.r_sb, g.r_st};
  Strategy theta_acdb = ApplySwap(g.graph, theta_abcd, tau_bt);
  EXPECT_EQ(theta_acdb.LeafOrder(g.graph),
            (std::vector<ArcId>{g.d_a, g.d_c, g.d_d, g.d_b}));
}

TEST(SiblingSwapTest, SwapRangeIsFStarSum) {
  FigureTwoGraph g = MakeFigureTwo();
  // Lambda[Theta_ABCD, Theta_ABDC] = f*(R_tc) + f*(R_td) = 2 + 2 = 4.
  SiblingSwap tau_dc{g.graph.arc(g.r_tc).from, g.r_tc, g.r_td};
  EXPECT_DOUBLE_EQ(SwapRange(g.graph, tau_dc), 4.0);
  // Lambda[Theta_ABCD, Theta_ACDB] = f*(R_sb) + f*(R_st) = 2 + 5 = 7.
  SiblingSwap tau_bt{g.graph.arc(g.r_sb).from, g.r_sb, g.r_st};
  EXPECT_DOUBLE_EQ(SwapRange(g.graph, tau_bt), 7.0);
}

TEST(SiblingSwapTest, SwapOnInterleavedStrategyPreservesOtherLeaves) {
  FigureTwoGraph g = MakeFigureTwo();
  // Interleaved order: d_b, d_a, d_c, d_d.
  Strategy theta =
      Strategy::FromLeafOrder(g.graph, {g.d_b, g.d_a, g.d_c, g.d_d});
  // Swap the S subtree (b, c, d) with the A subtree (a).
  SiblingSwap swap{g.graph.root(), g.r_ga, g.r_gs};
  Strategy swapped = ApplySwap(g.graph, theta, swap);
  // S leaves currently occupy positions 0, 2, 3; A leaf position 1.
  // S came first, so A's leaves move in front: a, b, c, d.
  EXPECT_EQ(swapped.LeafOrder(g.graph),
            (std::vector<ArcId>{g.d_a, g.d_b, g.d_c, g.d_d}));
}

TEST(SiblingSwapTest, DeadEndSwapIsNoOp) {
  InferenceGraph g;
  NodeId root = g.AddRoot("goal");
  ArcId dead = g.AddChild(root, "dead", ArcKind::kReduction, 1.0, "r").arc;
  ArcId leaf = g.AddRetrieval(root, 1.0, "d").arc;
  Strategy theta = Strategy::FromLeafOrder(g, {leaf});
  SiblingSwap swap{root, dead, leaf};
  // The dead subtree has no success leaves: leaf order is unchanged.
  EXPECT_EQ(ApplySwap(g, theta, swap), theta);
}

TEST(SiblingSwapTest, ToStringNamesArcs) {
  FigureOneGraph g = MakeFigureOne();
  SiblingSwap swap = AllSiblingSwaps(g.graph)[0];
  EXPECT_EQ(swap.ToString(g.graph), "swap(R_p, R_g)");
}

}  // namespace
}  // namespace stratlearn
