// E14 — Footnote 8 / Conclusions: dependent retrievals.
//
// Upsilon (and hence PAO) assumes the retrieval success probabilities
// are independent; PIB does not. We build a workload where two
// retrievals are perfectly correlated (they fail together), so the
// marginal-probability optimum differs from the true optimum:
//
//   leaves A, B, C, unit costs; B fails exactly when A fails;
//   p(A) = p(B) = 0.55, C independent with p(C) = 0.5.
//   Marginal ordering: A, B, C with true cost 1 + .45 + .45  = 1.90
//   True optimum:      A, C, B with cost      1 + .45 + .225 = 1.675
//   (after A fails, B is *known* to fail, so C must cut in between).
//
// PAO, fed the perfectly-estimated marginals, picks the worse order;
// PIB, which only ever compares whole-context costs, climbs to the true
// optimum. This is the paper's "PIB ... does not require that the
// success probabilities of the retrievals be independent" (Section 5.3).

#include <algorithm>
#include <cstdio>

#include "core/pao.h"
#include "core/pib.h"
#include "core/upsilon.h"
#include "harness.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;
using namespace stratlearn::bench;

namespace {

double TrueCost(const InferenceGraph& graph, const Strategy& strategy,
                MixtureOracle& oracle, Rng& rng) {
  QueryProcessor qp(&graph);
  double total = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    total += qp.Cost(strategy, oracle.Next(rng));
  }
  return total / n;
}

}  // namespace

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E14",
         "Footnote 8: dependent retrievals — PAO's independence "
         "assumption vs PIB",
         seed);
  Rng rng(seed);

  // Flat three-leaf graph A, B, C (unit costs).
  RandomTreeOptions unit;
  unit.min_cost = unit.max_cost = 1.0;
  Rng graph_rng(1);
  RandomTree tree = MakeFlatTree(graph_rng, 3, unit);
  const InferenceGraph& g = tree.graph;
  std::vector<ArcId> leaves = g.SuccessArcs();

  // Mixture: with weight .55 both A and B succeed; with .45 both fail.
  // C succeeds independently half the time in either profile.
  MixtureOracle oracle({{0.55, {1.0, 1.0, 0.5}}, {0.45, {0.0, 0.0, 0.5}}});
  std::vector<double> marginals = oracle.MarginalProbs();
  std::printf("Marginals: p(A) = %.2f, p(B) = %.2f, p(C) = %.2f — but A "
              "and B are perfectly correlated.\n\n",
              marginals[0], marginals[1], marginals[2]);

  // What the marginal-based Upsilon (the inner step of PAO) picks.
  Result<UpsilonResult> upsilon = UpsilonAot(g, marginals);
  if (!upsilon.ok()) return 1;
  double upsilon_cost = TrueCost(g, upsilon->strategy, oracle, rng);

  // PAO end to end (its estimates converge to the same marginals).
  PaoOptions pao_options;
  pao_options.epsilon = 0.2;
  pao_options.delta = 0.1;
  Result<PaoResult> pao = Pao::Run(g, oracle, rng, pao_options);
  if (!pao.ok()) return 1;
  double pao_cost = TrueCost(g, pao->strategy, oracle, rng);

  // PIB from the marginal-optimal strategy.
  Pib pib(&g, upsilon->strategy, PibOptions{.delta = 0.02});
  QueryProcessor qp(&g);
  for (int i = 0; i < 60000; ++i) {
    pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
  }
  double pib_cost = TrueCost(g, pib.strategy(), oracle, rng);

  // True optimum over all 6 leaf orders, by Monte Carlo.
  double best_cost = 1e300;
  Strategy best;
  std::vector<ArcId> order = leaves;
  std::sort(order.begin(), order.end());
  do {
    Strategy candidate = Strategy::FromLeafOrder(g, order);
    double cost = TrueCost(g, candidate, oracle, rng);
    if (cost < best_cost) {
      best_cost = cost;
      best = candidate;
    }
  } while (std::next_permutation(order.begin(), order.end()));

  Table table({"strategy", "chosen by", "true expected cost"});
  table.AddRow({upsilon->strategy.ToString(g), "Upsilon on marginals",
                Num(upsilon_cost)});
  table.AddRow({pao->strategy.ToString(g), "PAO (end to end)",
                Num(pao_cost)});
  table.AddRow({pib.strategy().ToString(g), "PIB (dependence-free)",
                Num(pib_cost)});
  table.AddRow({best.ToString(g), "exhaustive (truth)", Num(best_cost)});
  table.Print();

  // Shape: the exact-marginal Upsilon strategy is measurably worse than
  // the true optimum (PAO's own pick wobbles with sampling noise between
  // that order and other sub-optimal ones — it has no way to see the
  // correlation); PIB lands (statistically) at the optimum.
  bool marginals_fooled = upsilon_cost > best_cost + 0.1;
  bool pao_suboptimal = pao_cost > best_cost - 0.02;
  bool pib_wins = pib_cost < upsilon_cost - 0.1 &&
                  pib_cost < best_cost + 0.05;
  Verdict("E14", marginals_fooled && pao_suboptimal && pib_wins,
          "with correlated retrievals the marginal-probability optimum "
          "(PAO's target) pays ~0.22 extra per query while PIB converges "
          "to the true optimum — PIB needs no independence assumption");
  return (marginals_fooled && pao_suboptimal && pib_wins) ? 0 : 1;
}
