// E4 — PIB on Figure 2's G_B (the Section 3.2 scenario).
//
// Starting from Theta_ABCD with a distribution where D_a, D_b, D_c
// almost always fail and D_d succeeds, PIB should climb through sibling
// swaps until D_d's path is tried first. We print the hill-climbing
// trajectory and the anytime curve (true expected cost of the current
// strategy as a function of contexts processed).

#include <cstdio>

#include "core/expected_cost.h"
#include "core/pib.h"
#include "core/upsilon.h"
#include "graph/examples.h"
#include "harness.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;
using namespace stratlearn::bench;

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E4", "Figure 2 / Figure 3-4: PIB hill-climbing on G_B", seed);

  FigureTwoGraph g = MakeFigureTwo();
  std::vector<double> probs = {0.03, 0.03, 0.03, 0.85};
  Strategy theta_abcd = Strategy::DepthFirst(g.graph);
  std::printf("Initial Theta_ABCD = %s\n",
              theta_abcd.ToString(g.graph).c_str());
  std::printf("Distribution: p(D_a..D_c) = 0.03, p(D_d) = 0.85\n\n");

  Pib pib(&g.graph, theta_abcd, PibOptions{.delta = 0.05});
  IndependentOracle oracle(probs);
  QueryProcessor qp(&g.graph);
  Rng rng(seed);

  Table curve({"contexts", "strategy (leaf order)", "true C[Theta]"});
  auto leaf_names = [&](const Strategy& s) {
    std::string out;
    for (ArcId leaf : s.LeafOrder(g.graph)) {
      out += g.graph.arc(leaf).label + " ";
    }
    return out;
  };
  const int64_t total = 20000;
  int64_t next_report = 1;
  for (int64_t i = 1; i <= total; ++i) {
    bool moved = pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
    if (i == next_report || moved || i == total) {
      curve.AddRow({Int(i), leaf_names(pib.strategy()),
                    Num(ExactExpectedCost(g.graph, pib.strategy(), probs))});
      if (i == next_report) next_report *= 4;
    }
  }
  curve.Print();

  std::printf("\nMoves taken:\n");
  Table moves({"at context", "|S| used", "transformation", "Delta~ sum",
               "threshold"});
  for (const Pib::Move& m : pib.moves()) {
    moves.AddRow({Int(m.at_context), Int(m.samples_used),
                  m.swap.ToString(g.graph), Num(m.delta_sum),
                  Num(m.threshold)});
  }
  moves.Print();

  double initial_cost = ExactExpectedCost(g.graph, theta_abcd, probs);
  double final_cost = ExactExpectedCost(g.graph, pib.strategy(), probs);
  Result<UpsilonResult> opt = UpsilonAot(g.graph, probs);
  std::printf("\nC[initial] = %s, C[learned] = %s, C[optimal] = %s\n",
              Num(initial_cost).c_str(), Num(final_cost).c_str(),
              Num(opt->expected_cost).c_str());

  bool d_first = pib.strategy().LeafOrder(g.graph)[0] == g.d_d;
  bool improved = final_cost < initial_cost - 1.0;
  Verdict("E4", d_first && improved && !pib.moves().empty(),
          "PIB climbs from Theta_ABCD to a strategy that tries D_d's "
          "path first, roughly halving expected cost");
  return (d_first && improved) ? 0 : 1;
}
