// E15 — Section 5.1's unobtrusiveness claim, quantified.
//
// Both learners "basically monitor a query processor as it deals with
// queries". Two costs could break that promise:
//  (a) bookkeeping — the paper claims "one or two counters per
//      retrieval"; we report the learners' working-state size;
//  (b) sampling overhead — PAO's adaptive QP^A deliberately aims at
//      under-sampled experiments, so queries answered DURING the
//      sampling phase can cost more than the eventual optimum. We
//      measure the per-query cost paid while learning (PIB online, QP^A
//      sampling) against the initial and optimal strategies.

#include <cstdio>

#include "core/expected_cost.h"
#include "core/pao.h"
#include "core/pib.h"
#include "core/upsilon.h"
#include "engine/adaptive_qp.h"
#include "harness.h"
#include "stats/running_stats.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;
using namespace stratlearn::bench;

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E15", "Unobtrusiveness: what learning costs while it runs",
         seed);
  Rng rng(seed);

  RandomTreeOptions options;
  options.depth = 3;
  options.min_branch = 2;
  options.max_branch = 3;
  RandomTree tree = MakeRandomTree(rng, options);
  const InferenceGraph& g = tree.graph;
  IndependentOracle oracle(tree.probs);
  std::printf("Graph: %zu arcs, %zu experiments\n\n", g.num_arcs(),
              g.num_experiments());

  Strategy initial = Strategy::DepthFirst(g);
  double c_initial = ExactExpectedCost(g, initial, tree.probs);
  Result<UpsilonResult> opt = UpsilonAot(g, tree.probs);
  if (!opt.ok()) return 1;

  // (a) bookkeeping: PIB keeps one Delta~ accumulator per neighbour and
  // the trial counters; PAO keeps the per-experiment counters.
  Pib pib(&g, initial, PibOptions{.delta = 0.05});
  std::printf("(a) working state — PIB: %zu neighbour accumulators + 2 "
              "counters; PAO/QP^A: %zu experiment counters (3 ints each)\n\n",
              pib.num_neighbors(), g.num_experiments());

  // (b) online costs. PIB: average observed per-query cost in windows.
  const int64_t total_queries = 30000;
  QueryProcessor qp(&g);
  Table pib_table({"queries", "mean cost/query in window",
                   "C[initial]", "C[optimal]"});
  RunningStats window;
  int64_t next_report = 1000;
  for (int64_t i = 1; i <= total_queries; ++i) {
    Trace trace = qp.Execute(pib.strategy(), oracle.Next(rng));
    window.Add(trace.cost);
    pib.Observe(trace);
    if (i == next_report) {
      pib_table.AddRow({Int(i), Num(window.mean()), Num(c_initial),
                        Num(opt->expected_cost)});
      window.Reset();
      next_report *= 3;
    }
  }
  std::printf("(b1) PIB pays the CURRENT strategy's cost while learning "
              "(never worse than the initial strategy in expectation):\n\n");
  pib_table.Print();
  double pib_final_cost = ExactExpectedCost(g, pib.strategy(), tree.probs);

  // QP^A sampling-phase overhead.
  PaoOptions pao_options;
  pao_options.epsilon = 0.25 * g.TotalCost();
  pao_options.delta = 0.1;
  std::vector<int64_t> quotas = Pao::ComputeQuotas(g, pao_options);
  AdaptiveQueryProcessor qpa(&g, quotas,
                             AdaptiveQueryProcessor::QuotaMode::kAttempts);
  RunningStats sampling_cost;
  while (!qpa.QuotasMet()) {
    sampling_cost.Add(qpa.Process(oracle.Next(rng)).trace.cost);
  }
  Result<UpsilonResult> learned =
      UpsilonAot(g, qpa.SuccessFrequencies());
  if (!learned.ok()) return 1;
  double pao_final_cost =
      ExactExpectedCost(g, learned->strategy, tree.probs);

  std::printf("\n(b2) QP^A sampling phase (%lld contexts):\n\n",
              static_cast<long long>(qpa.contexts_processed()));
  Table pao_table({"phase", "mean cost/query"});
  pao_table.AddRow({"QP^A while sampling", Num(sampling_cost.mean())});
  pao_table.AddRow({"initial strategy", Num(c_initial)});
  pao_table.AddRow({"PAO result afterwards", Num(pao_final_cost)});
  pao_table.AddRow({"true optimum", Num(opt->expected_cost)});
  pao_table.Print();
  double overhead =
      (sampling_cost.mean() - opt->expected_cost) / opt->expected_cost;
  std::printf("\nQP^A sampling overhead vs optimum: %.1f%% per query, "
              "paid only during the finite sampling phase.\n",
              100.0 * overhead);

  bool ok = pib_final_cost <= c_initial + 1e-9 &&
            pao_final_cost <=
                opt->expected_cost + pao_options.epsilon + 1e-9 &&
            sampling_cost.mean() <= g.TotalCost();
  Verdict("E15", ok,
          "learning never degrades the served queries beyond the graph's "
          "worst case: PIB serves at the current (monotonically "
          "improving) strategy's cost, and QP^A's aiming overhead is "
          "bounded and temporary");
  return ok ? 0 : 1;
}
