// E2 — Section 2's Smith-baseline pitfall (the DB_2 scenario).
//
// The database holds 2,000 prof facts and 500 grad facts, so the
// fact-count model of [Smi89] declares prof retrievals 4x likelier to
// succeed and orders prof first. The users, however, only ask about
// minors (grad students). We sweep the fraction of prof-queries in the
// workload and report the cost of the Smith strategy vs the
// workload-aware optimum: Smith is constant (it never looks at queries),
// the optimum tracks the workload, and the gap is largest exactly in the
// minors-only regime the paper describes.

#include <cstdio>

#include "core/expected_cost.h"
#include "core/smith.h"
#include "core/upsilon.h"
#include "datalog/parser.h"
#include "harness.h"
#include "util/string_util.h"
#include "workload/datalog_oracle.h"

using namespace stratlearn;
using namespace stratlearn::bench;

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E2",
         "Section 2 DB_2 pitfall: fact-count estimates vs the true query "
         "distribution",
         seed);

  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  if (!parser
           .LoadProgram(
               "instructor(X) :- prof(X). instructor(X) :- grad(X).", &db,
               &rules)
           .ok()) {
    return 1;
  }
  SymbolId prof = symbols.Intern("prof");
  SymbolId grad = symbols.Intern("grad");
  for (int i = 0; i < 2000; ++i) {
    (void)db.Insert(prof, {symbols.Intern(StrFormat("prof%d", i))});
  }
  for (int i = 0; i < 500; ++i) {
    (void)db.Insert(grad, {symbols.Intern(StrFormat("grad%d", i))});
  }
  Result<QueryForm> form = QueryForm::Parse("instructor(b)", &symbols);
  Result<BuiltGraph> built = BuildInferenceGraph(rules, *form, &symbols);
  if (!built.ok()) return 1;
  const InferenceGraph& graph = built->graph;

  std::vector<double> smith_est = SmithFactCountEstimates(*built, db);
  std::printf("Smith estimates from fact counts (2000 prof / 500 grad): "
              "p^(prof) = %.2f, p^(grad) = %.2f (ratio %.1fx)\n\n",
              smith_est[0], smith_est[1], smith_est[0] / smith_est[1]);
  Result<UpsilonResult> smith = UpsilonAot(graph, smith_est);
  if (!smith.ok()) return 1;

  Table table({"prof-query share", "C[smith]", "C[optimal]",
               "smith/optimal"});
  bool shape_ok = true;
  double minors_ratio = 0.0;
  for (double prof_share : {1.0, 0.75, 0.5, 0.25, 0.1, 0.0}) {
    QueryWorkload workload;
    if (prof_share > 0.0) {
      workload.entries.push_back(
          {{symbols.Intern("prof0")}, prof_share});
    }
    if (prof_share < 1.0) {
      workload.entries.push_back(
          {{symbols.Intern("grad0")}, 1.0 - prof_share});
    }
    DatalogOracle oracle(&built.value(), &db, workload);
    std::vector<double> truth = oracle.TrueMarginalProbs();
    Result<UpsilonResult> optimal = UpsilonAot(graph, truth);
    if (!optimal.ok()) return 1;
    double smith_cost = ExactExpectedCost(graph, smith->strategy, truth);
    double optimal_cost =
        ExactExpectedCost(graph, optimal->strategy, truth);
    double ratio = smith_cost / optimal_cost;
    if (prof_share == 0.0) minors_ratio = ratio;
    shape_ok &= smith_cost >= optimal_cost - 1e-9;
    table.AddRow({Num(prof_share), Num(smith_cost), Num(optimal_cost),
                  Num(ratio)});
  }
  table.Print();

  // The paper's punchline regime: minors only -> Smith pays 4 for the
  // wasted prof path, optimum pays 2.
  shape_ok &= minors_ratio > 1.9;
  Verdict("E2", shape_ok,
          "the fact-count strategy is never better than the "
          "workload-aware optimum and costs ~2x in the minors-only "
          "regime (4 vs 2 arc traversals per query)");
  return shape_ok ? 0 : 1;
}
