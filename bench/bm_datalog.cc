// Micro-benchmarks for the Datalog substrate: parsing, fact lookup,
// matching, and SLD proof search.

#include <benchmark/benchmark.h>

#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "util/string_util.h"

namespace stratlearn {
namespace {

void BM_ParseProgram(benchmark::State& state) {
  std::string program;
  for (int i = 0; i < state.range(0); ++i) {
    program += StrFormat("edge(n%d, n%d).", i, i + 1);
  }
  for (auto _ : state) {
    SymbolTable symbols;
    Parser parser(&symbols);
    benchmark::DoNotOptimize(parser.ParseProgram(program));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParseProgram)->Arg(100)->Arg(1000);

void BM_DatabaseContains(benchmark::State& state) {
  SymbolTable symbols;
  Database db;
  SymbolId pred = symbols.Intern("person");
  for (int i = 0; i < state.range(0); ++i) {
    (void)db.Insert(pred, {symbols.Intern(StrFormat("p%d", i))});
  }
  FactTuple hit = {symbols.Intern("p0")};
  FactTuple miss = {symbols.Intern("nobody")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Contains(pred, hit));
    benchmark::DoNotOptimize(db.Contains(pred, miss));
  }
}
BENCHMARK(BM_DatabaseContains)->Arg(1000)->Arg(100000);

void BM_DatabaseMatchIndexed(benchmark::State& state) {
  SymbolTable symbols;
  Database db;
  SymbolId pred = symbols.Intern("age");
  for (int i = 0; i < state.range(0); ++i) {
    (void)db.Insert(pred, {symbols.Intern(StrFormat("p%d", i)),
                           symbols.Intern(StrFormat("%d", i % 90))});
  }
  Atom pattern;
  pattern.predicate = pred;
  pattern.args = {Term::Constant(symbols.Intern("p7")),
                  Term::Variable(symbols.Intern("X"))};
  for (auto _ : state) {
    std::vector<FactTuple> out;
    db.Match(pattern, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DatabaseMatchIndexed)->Arg(1000)->Arg(100000);

void BM_SldProof(benchmark::State& state) {
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  std::string program =
      "path(X, Y) :- edge(X, Y)."
      "path(X, Y) :- edge(X, Z), path(Z, Y).";
  for (int i = 0; i < state.range(0); ++i) {
    program += StrFormat("edge(n%d, n%d).", i, i + 1);
  }
  (void)parser.LoadProgram(program, &db, &rules);
  Result<Atom> query = parser.ParseAtom(
      StrFormat("path(n0, n%d)", static_cast<int>(state.range(0))));
  EvaluatorOptions options;
  options.max_depth = static_cast<int>(state.range(0)) + 8;
  Evaluator evaluator(&db, &rules, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Prove(*query, &symbols));
  }
}
BENCHMARK(BM_SldProof)->Arg(8)->Arg(32);

}  // namespace
}  // namespace stratlearn


