// E9 — Upsilon_AOT: optimality cross-check and scaling.
//
// (a) On random small trees, the block-merging Upsilon matches the
//     exhaustive optimum exactly (the paper's claim that Upsilon_OT is
//     an *efficient algorithm* for simple disjunctive AOT graphs).
// (b) Runtime scaling: Upsilon on flat and deep trees up to 10^4 leaves
//     stays sub-second, while brute force is factorial (we show its wall
//     time exploding already at 8 leaves).

#include <chrono>
#include <cstdio>

#include "core/expected_cost.h"
#include "core/upsilon.h"
#include "harness.h"
#include "util/math_util.h"
#include "workload/random_tree.h"

using namespace stratlearn;
using namespace stratlearn::bench;

namespace {

double MillisSince(
    const std::chrono::steady_clock::time_point& start) {
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E9", "Upsilon_AOT optimality and scaling (Section 4)", seed);
  Rng rng(seed);

  // (a) exact agreement with brute force.
  int agreements = 0;
  const int checks = 150;
  for (int t = 0; t < checks; ++t) {
    RandomTree tree = MakeRandomTree(rng);
    if (tree.graph.SuccessArcs().size() > 7) {
      --t;  // resample; we need brute-forceable trees
      continue;
    }
    Result<UpsilonResult> upsilon = UpsilonAot(tree.graph, tree.probs);
    Result<OptimalResult> brute = BruteForceOptimal(tree.graph, tree.probs, 7);
    if (upsilon.ok() && brute.ok() &&
        AlmostEqual(upsilon->expected_cost, brute->cost, 1e-7)) {
      ++agreements;
    }
  }
  std::printf("(a) block merging == brute force on %d/%d random trees\n\n",
              agreements, checks);

  // (b) scaling.
  std::printf("(b) wall time (ms), single shot\n\n");
  Table scaling({"shape", "leaves", "arcs", "Upsilon ms",
                 "brute force ms"});
  for (int n : {6, 8}) {
    Rng local(seed + n);
    RandomTree tree = MakeFlatTree(local, n);
    auto t0 = std::chrono::steady_clock::now();
    (void)UpsilonAot(tree.graph, tree.probs);
    double upsilon_ms = MillisSince(t0);
    t0 = std::chrono::steady_clock::now();
    (void)BruteForceOptimal(tree.graph, tree.probs, n);
    double brute_ms = MillisSince(t0);
    scaling.AddRow({"flat", Int(n), Int(tree.graph.num_arcs()),
                    Num(upsilon_ms), Num(brute_ms)});
  }
  double last_big_ms = 0.0;
  for (int n : {100, 1000, 10000}) {
    Rng local(seed + n);
    RandomTree tree = MakeFlatTree(local, n);
    auto t0 = std::chrono::steady_clock::now();
    Result<UpsilonResult> r = UpsilonAot(tree.graph, tree.probs);
    double upsilon_ms = MillisSince(t0);
    last_big_ms = upsilon_ms;
    if (!r.ok()) return 1;
    scaling.AddRow({"flat", Int(n), Int(tree.graph.num_arcs()),
                    Num(upsilon_ms), "-"});
  }
  {
    RandomTreeOptions options;
    options.depth = 7;
    options.min_branch = 3;
    options.max_branch = 4;
    options.early_leaf_prob = 0.1;
    Rng local(seed);
    RandomTree tree = MakeRandomTree(local, options);
    auto t0 = std::chrono::steady_clock::now();
    Result<UpsilonResult> r = UpsilonAot(tree.graph, tree.probs);
    double upsilon_ms = MillisSince(t0);
    if (!r.ok()) return 1;
    scaling.AddRow({"deep",
                    Int(static_cast<int64_t>(
                        tree.graph.SuccessArcs().size())),
                    Int(tree.graph.num_arcs()), Num(upsilon_ms), "-"});
  }
  scaling.Print();

  bool ok = agreements == checks && last_big_ms < 5000.0;
  Verdict("E9", ok,
          "Upsilon is exactly optimal on every sampled tree and handles "
          "10^4 leaves in well under a second, where brute force is "
          "already infeasible at 10 leaves");
  return ok ? 0 : 1;
}
