// Micro-benchmarks (google-benchmark) for the hot paths: strategy
// execution, expected-cost evaluation, Upsilon, and PIB's per-context
// update. These are throughput numbers, not paper artifacts.

#include <benchmark/benchmark.h>

#include "core/delta_estimator.h"
#include "core/expected_cost.h"
#include "core/pib.h"
#include "core/transformations.h"
#include "core/upsilon.h"
#include "engine/query_processor.h"
#include "obs/observer.h"
#include "obs/profiler.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

namespace stratlearn {
namespace {

RandomTree MakeTree(int depth) {
  Rng rng(42 + static_cast<uint64_t>(depth));
  RandomTreeOptions options;
  options.depth = depth;
  options.min_branch = 2;
  options.max_branch = 3;
  options.early_leaf_prob = 0.1;
  return MakeRandomTree(rng, options);
}

void BM_ExecuteStrategy(benchmark::State& state) {
  RandomTree tree = MakeTree(static_cast<int>(state.range(0)));
  Strategy theta = Strategy::DepthFirst(tree.graph);
  QueryProcessor qp(&tree.graph);
  IndependentOracle oracle(tree.probs);
  Rng rng(7);
  Context ctx = oracle.Next(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp.Execute(theta, ctx));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["arcs"] = static_cast<double>(tree.graph.num_arcs());
}
BENCHMARK(BM_ExecuteStrategy)->Arg(3)->Arg(5)->Arg(7);

// Same hot path with a metrics-only observer attached: the price of
// qp.* counters and wall-time histograms (no trace sink).
void BM_ExecuteStrategyObserved(benchmark::State& state) {
  RandomTree tree = MakeTree(static_cast<int>(state.range(0)));
  Strategy theta = Strategy::DepthFirst(tree.graph);
  obs::MetricsRegistry registry;
  obs::Observer observer(&registry, nullptr);
  QueryProcessor qp(&tree.graph, &observer);
  IndependentOracle oracle(tree.probs);
  Rng rng(7);
  Context ctx = oracle.Next(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp.Execute(theta, ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecuteStrategyObserved)->Arg(3)->Arg(5)->Arg(7);

// Full observability: metrics plus the StrategyProfiler aggregating
// every event online — the cost of `--profile-out` / `explain` over
// BM_ExecuteStrategyObserved is the profiler's aggregation overhead.
void BM_ExecuteStrategyProfiled(benchmark::State& state) {
  RandomTree tree = MakeTree(static_cast<int>(state.range(0)));
  Strategy theta = Strategy::DepthFirst(tree.graph);
  obs::MetricsRegistry registry;
  obs::StrategyProfiler profiler;
  obs::Observer observer(&registry, &profiler);
  QueryProcessor qp(&tree.graph, &observer);
  IndependentOracle oracle(tree.probs);
  Rng rng(7);
  Context ctx = oracle.Next(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp.Execute(theta, ctx));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["profiled_arcs"] =
      static_cast<double>(profiler.arcs().size());
}
BENCHMARK(BM_ExecuteStrategyProfiled)->Arg(3)->Arg(5)->Arg(7);

void BM_LeafOnlyExpectedCost(benchmark::State& state) {
  RandomTree tree = MakeTree(static_cast<int>(state.range(0)));
  Strategy theta = Strategy::DepthFirst(tree.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LeafOnlyExpectedCost(tree.graph, theta, tree.probs));
  }
}
BENCHMARK(BM_LeafOnlyExpectedCost)->Arg(3)->Arg(5)->Arg(7);

void BM_ExactExpectedCostDP(benchmark::State& state) {
  // Force the general O(A^2) DP by adding one internal experiment.
  Rng rng(43);
  RandomTreeOptions options;
  options.depth = static_cast<int>(state.range(0));
  options.internal_experiment_prob = 0.3;
  RandomTree tree = MakeRandomTree(rng, options);
  Strategy theta = Strategy::DepthFirst(tree.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExactExpectedCost(tree.graph, theta, tree.probs));
  }
  state.counters["arcs"] = static_cast<double>(tree.graph.num_arcs());
}
BENCHMARK(BM_ExactExpectedCostDP)->Arg(3)->Arg(5);

void BM_UpsilonFlat(benchmark::State& state) {
  Rng rng(44);
  RandomTree tree = MakeFlatTree(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(UpsilonAot(tree.graph, tree.probs));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UpsilonFlat)->Range(64, 16384)->Complexity();

void BM_PibObserve(benchmark::State& state) {
  RandomTree tree = MakeTree(static_cast<int>(state.range(0)));
  Pib pib(&tree.graph, Strategy::DepthFirst(tree.graph),
          PibOptions{.delta = 0.5});
  IndependentOracle oracle(tree.probs);
  QueryProcessor qp(&tree.graph);
  Rng rng(9);
  for (auto _ : state) {
    pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
  }
  state.counters["neighbors"] =
      static_cast<double>(pib.num_neighbors());
}
BENCHMARK(BM_PibObserve)->Arg(3)->Arg(5);

void BM_DeltaUnderEstimate(benchmark::State& state) {
  RandomTree tree = MakeTree(static_cast<int>(state.range(0)));
  Strategy theta = Strategy::DepthFirst(tree.graph);
  std::vector<SiblingSwap> swaps = AllSiblingSwaps(tree.graph);
  Strategy alt = ApplySwap(tree.graph, theta, swaps[0]);
  DeltaEstimator estimator(&tree.graph);
  QueryProcessor qp(&tree.graph);
  IndependentOracle oracle(tree.probs);
  Rng rng(10);
  Trace trace = qp.Execute(theta, oracle.Next(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.UnderEstimate(trace, alt));
  }
}
BENCHMARK(BM_DeltaUnderEstimate)->Arg(3)->Arg(5)->Arg(7);

}  // namespace
}  // namespace stratlearn


