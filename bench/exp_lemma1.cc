// E8 — Lemma 1's sensitivity bound for Upsilon_AOT.
//
// For random AOT trees and random perturbations p^ of the true p,
// measure the regret C_P[Theta_p^] - C_P[Theta_P] and compare it with
// Lemma 1's bound 2 * sum_i F_not[e_i] * rho(e_i) * |p_i - p^_i|.
// The bound must never be violated, and should tighten as the
// perturbation shrinks.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/expected_cost.h"
#include "core/upsilon.h"
#include "harness.h"
#include "stats/running_stats.h"
#include "workload/random_tree.h"

using namespace stratlearn;
using namespace stratlearn::bench;

namespace {

/// rho(e): the largest reach probability over strategies — for an AOT
/// tree, the product of the pass probabilities on Pi(e) (Definition 2).
double Rho(const InferenceGraph& graph, ArcId arc,
           const std::vector<double>& probs) {
  double rho = 1.0;
  for (ArcId a : graph.Pi(arc)) {
    int e = graph.arc(a).experiment;
    if (e >= 0) rho *= probs[static_cast<size_t>(e)];
  }
  return rho;
}

}  // namespace

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E8", "Lemma 1: sensitivity of Upsilon_AOT to estimate error",
         seed);
  Rng rng(seed);

  Table table({"perturbation", "trials", "mean regret", "max regret",
               "mean bound", "violations"});
  bool ok = true;
  double prev_mean_regret = -1.0;
  bool regret_shrinks = true;

  for (double noise : {0.30, 0.10, 0.03}) {
    RunningStats regret_stats, bound_stats;
    int violations = 0;
    const int trials = 120;
    for (int t = 0; t < trials; ++t) {
      RandomTree tree = MakeRandomTree(rng);
      std::vector<double> noisy = tree.probs;
      for (double& p : noisy) {
        p = std::min(1.0, std::max(0.0, p + rng.NextUniform(-noise, noise)));
      }
      Result<UpsilonResult> opt = UpsilonAot(tree.graph, tree.probs);
      Result<UpsilonResult> perturbed = UpsilonAot(tree.graph, noisy);
      if (!opt.ok() || !perturbed.ok()) return 1;
      double regret =
          ExactExpectedCost(tree.graph, perturbed->strategy, tree.probs) -
          opt->expected_cost;
      double bound = 0.0;
      for (size_t e = 0; e < tree.graph.num_experiments(); ++e) {
        ArcId arc = tree.graph.experiments()[e];
        bound += 2.0 * tree.graph.FNeg(arc) *
                 Rho(tree.graph, arc, tree.probs) *
                 std::fabs(tree.probs[e] - noisy[e]);
      }
      regret_stats.Add(regret);
      bound_stats.Add(bound);
      if (regret > bound + 1e-9) ++violations;
    }
    ok &= violations == 0;
    if (prev_mean_regret >= 0.0 &&
        regret_stats.mean() > prev_mean_regret + 1e-9) {
      regret_shrinks = false;
    }
    prev_mean_regret = regret_stats.mean();
    table.AddRow({Num(noise), Int(trials), Num(regret_stats.mean()),
                  Num(regret_stats.max()), Num(bound_stats.mean()),
                  Int(violations)});
  }
  table.Print();

  Verdict("E8", ok && regret_shrinks,
          "the measured regret never exceeds Lemma 1's "
          "2*sum F_not*rho*|dp| bound and shrinks with the perturbation");
  return (ok && regret_shrinks) ? 0 : 1;
}
