// E3 — PIB_1 / Equation 3 behaviour on G_A.
//
// Two tables:
//  (a) samples-to-switch as a function of the true improvement gap
//      D = C[Theta_1] - C[Theta_2] (bigger gap -> faster approval) for
//      several confidence levels delta;
//  (b) the false-positive rate when the proposed switch is *not* an
//      improvement, which Theorem-style soundness requires to stay
//      below delta.

#include <algorithm>
#include <cstdio>

#include "core/expected_cost.h"
#include "core/pib1.h"
#include "graph/examples.h"
#include "harness.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;
using namespace stratlearn::bench;

namespace {

/// Runs PIB_1 until it approves the switch or `max_samples` is hit.
/// Returns samples used, or -1 if it never approved.
int64_t SamplesToSwitch(const FigureOneGraph& g, double p_prof,
                        double p_grad, double delta, Rng& rng,
                        int64_t max_samples) {
  Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
  Pib1 pib1(&g.graph, theta1, AllSiblingSwaps(g.graph)[0],
            {.delta = delta});
  IndependentOracle oracle({p_prof, p_grad});
  QueryProcessor qp(&g.graph);
  for (int64_t i = 1; i <= max_samples; ++i) {
    pib1.Observe(qp.Execute(theta1, oracle.Next(rng)));
    if (pib1.ShouldSwitch()) return i;
  }
  return -1;
}

}  // namespace

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E3", "PIB_1 (Equation 3): samples-to-switch and soundness", seed);
  FigureOneGraph g = MakeFigureOne();
  Rng rng(seed);

  // (a) samples-to-switch vs true gap. Fix p_prof = 0.1 and raise
  // p_grad, so the grad-first alternative improves by an increasing gap.
  std::printf("(a) median samples until the Theta1 -> Theta2 switch is "
              "approved (20 runs each; '-' = not within 20000)\n\n");
  Table speed({"p_grad", "true gap D", "delta=0.2", "delta=0.05",
               "delta=0.01"});
  std::vector<double> medians_strong, medians_weak;
  for (double p_grad : {0.3, 0.5, 0.7, 0.9}) {
    std::vector<std::string> row;
    double p_prof = 0.1;
    Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
    Strategy theta2 = Strategy::FromLeafOrder(g.graph, {g.d_g, g.d_p});
    double gap = ExactExpectedCost(g.graph, theta1, {p_prof, p_grad}) -
                 ExactExpectedCost(g.graph, theta2, {p_prof, p_grad});
    row.push_back(Num(p_grad));
    row.push_back(Num(gap));
    for (double delta : {0.2, 0.05, 0.01}) {
      std::vector<int64_t> samples;
      for (int run = 0; run < 20; ++run) {
        int64_t s = SamplesToSwitch(g, p_prof, p_grad, delta, rng, 20000);
        samples.push_back(s < 0 ? 20000 : s);
      }
      std::sort(samples.begin(), samples.end());
      int64_t median = samples[samples.size() / 2];
      if (delta == 0.05) {
        if (p_grad <= 0.31) {
          medians_weak.push_back(static_cast<double>(median));
        }
        if (p_grad >= 0.89) {
          medians_strong.push_back(static_cast<double>(median));
        }
      }
      row.push_back(median >= 20000 ? "-" : Int(median));
    }
    speed.AddRow(row);
  }
  speed.Print();

  // (b) false positives: the alternative is strictly worse.
  std::printf("\n(b) false-positive rate over 300 runs x 500 samples when "
              "Theta2 is WORSE (p = <0.6, 0.3>)\n\n");
  Table soundness({"delta", "false positives", "rate", "bound"});
  bool sound = true;
  for (double delta : {0.2, 0.1, 0.05}) {
    int positives = 0;
    const int runs = 300;
    for (int run = 0; run < runs; ++run) {
      Strategy theta1 = Strategy::FromLeafOrder(g.graph, {g.d_p, g.d_g});
      Pib1 pib1(&g.graph, theta1, AllSiblingSwaps(g.graph)[0],
                {.delta = delta});
      IndependentOracle oracle({0.6, 0.3});
      QueryProcessor qp(&g.graph);
      Rng run_rng = rng.Fork();
      for (int i = 0; i < 500; ++i) {
        pib1.Observe(qp.Execute(theta1, oracle.Next(run_rng)));
        if (pib1.ShouldSwitch()) break;
      }
      if (pib1.ShouldSwitch()) ++positives;
    }
    double rate = static_cast<double>(positives) / runs;
    sound &= rate <= delta + 0.02;  // small sampling slack
    soundness.AddRow({Num(delta), Int(positives), Num(rate), Num(delta)});
  }
  soundness.Print();

  bool faster_with_gap =
      !medians_strong.empty() && !medians_weak.empty() &&
      medians_strong.front() < medians_weak.front();
  Verdict("E3", sound && faster_with_gap,
          "bigger true gaps and looser deltas switch sooner; the "
          "false-positive rate stays below delta");
  return (sound && faster_with_gap) ? 0 : 1;
}
