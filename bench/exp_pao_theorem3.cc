// E7 — Theorem 3 / Equation 8: attempted-reach sampling for rarely
// reachable experiments (the "grad(fred) :- admitted(fred, X)" example).
//
// A guarded arc with reach probability rho << 1 starves Theorem 2's
// attempt quotas (the sampling loop spins for its max budget), while
// Theorem 3's aim-counted quotas finish and still deliver an
// epsilon-optimal strategy — because low-rho experiments barely affect
// expected cost (Lemma 1's rho factor).

#include <cstdio>

#include "core/expected_cost.h"
#include "core/pao.h"
#include "core/upsilon.h"
#include "harness.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;
using namespace stratlearn::bench;

namespace {

/// Builds the Section 4.1 shape: a guarded subtree plus two plain
/// retrievals. Experiment order: guard (0), inner retrieval (1),
/// d_main (2), d_other (3).
InferenceGraph MakeGuardedGraph() {
  InferenceGraph g;
  NodeId root = g.AddRoot("instructor(k)");
  auto guard = g.AddChild(root, "admitted(fred, X)", ArcKind::kReduction,
                          1.0, "R_fred", /*is_experiment=*/true);
  g.AddRetrieval(guard.node, 1.0, "D_admitted");
  g.AddRetrieval(root, 1.0, "D_prof");
  g.AddRetrieval(root, 1.0, "D_grad");
  return g;
}

}  // namespace

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E7",
         "Theorem 3 / Equation 8: aim-counted sampling with rho << 1",
         seed);
  InferenceGraph g = MakeGuardedGraph();

  // The guard opens only for fred queries: rho(inner) = 0.05.
  std::vector<double> probs = {0.05, 0.8, 0.5, 0.45};
  IndependentOracle oracle(probs);

  std::printf("Graph: guarded subtree (guard prob %.2f) + 2 retrievals\n\n",
              probs[0]);

  Table quota_table({"experiment", "F_not", "Eq 7 m(d)", "Eq 8 m'(e)"});
  PaoOptions t2;
  t2.epsilon = 1.0;
  t2.delta = 0.1;
  PaoOptions t3 = t2;
  t3.mode = PaoOptions::Mode::kTheorem3;
  std::vector<int64_t> q2 = Pao::ComputeQuotas(g, t2);
  std::vector<int64_t> q3 = Pao::ComputeQuotas(g, t3);
  for (size_t e = 0; e < g.num_experiments(); ++e) {
    ArcId arc = g.experiments()[e];
    quota_table.AddRow({g.arc(arc).label, Num(g.FNeg(arc)), Int(q2[e]),
                        Int(q3[e])});
  }
  quota_table.Print();

  // Theorem 2 stalls: the inner retrieval is reached only when the guard
  // opens (5% of aims), so attempt quotas take ~20x longer than aims —
  // under a tight context budget the run is abandoned.
  Rng rng(seed);
  t2.max_contexts = 4000;
  Result<PaoResult> r2 = Pao::Run(g, oracle, rng, t2);
  bool theorem2_stalled =
      !r2.ok() && r2.status().code() == StatusCode::kResourceExhausted;
  std::printf("\nTheorem 2 mode with a %lld-context budget: %s\n",
              static_cast<long long>(t2.max_contexts),
              r2.ok() ? "completed (unexpected)"
                      : r2.status().ToString().c_str());

  // Theorem 3 completes within the same budget regime.
  t3.max_contexts = 2'000'000;
  Result<PaoResult> r3 = Pao::Run(g, oracle, rng, t3);
  if (!r3.ok()) {
    std::printf("Theorem 3 run failed: %s\n",
                r3.status().ToString().c_str());
    return 1;
  }
  std::printf("Theorem 3 mode: finished after %lld contexts\n",
              static_cast<long long>(r3->contexts_used));
  Table est({"experiment", "true p", "estimate p^"});
  for (size_t e = 0; e < g.num_experiments(); ++e) {
    est.AddRow({g.arc(g.experiments()[e]).label, Num(probs[e]),
                Num(r3->estimates[e])});
  }
  est.Print();

  Result<UpsilonResult> opt = UpsilonAot(g, probs);
  double pao_cost = ExactExpectedCost(g, r3->strategy, probs);
  std::printf("\nC[Theta_pao] = %s, C[Theta_opt] = %s (epsilon = %s)\n",
              Num(pao_cost).c_str(), Num(opt->expected_cost).c_str(),
              Num(t3.epsilon).c_str());

  bool within_epsilon = pao_cost <= opt->expected_cost + t3.epsilon + 1e-9;
  Verdict("E7", theorem2_stalled && within_epsilon,
          "attempt-counted quotas stall on the low-rho experiment while "
          "aim-counted quotas finish and stay within epsilon of optimal");
  return (theorem2_stalled && within_epsilon) ? 0 : 1;
}
