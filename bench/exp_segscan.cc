// E10 — Section 5.2 application: horizontally segmented scan ordering.
//
// Sweep the skew of the per-segment hit distribution (Zipf-like) and
// compare three scan orders over a 12-segment relation: the fixed file
// order, the PIB-learned order, and the p/c-ratio optimum. The paper's
// claim: learning the order from the query stream recovers most of the
// optimal saving, and the saving grows with skew.

#include <cmath>
#include <cstdio>

#include "apps/segscan.h"
#include "core/expected_cost.h"
#include "core/pib.h"
#include "engine/query_processor.h"
#include "harness.h"
#include "util/string_util.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;
using namespace stratlearn::bench;

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E10", "Segmented-scan ordering (Section 5.2 application)", seed);
  Rng rng(seed);

  const int kSegments = 12;
  Table table({"zipf s", "C[file order]", "C[PIB]", "C[optimal]",
               "PIB saving", "optimal saving"});
  bool ok = true;
  double prev_opt_saving = 0.0;
  bool saving_grows = true;

  for (double s : {0.0, 0.5, 1.0, 1.5}) {
    // Segment i holds queries with Zipf(s) weight; costs grow with the
    // segment index (older segments are bigger) and the hot segments sit
    // at the END of the file order, so the naive order is bad.
    std::vector<Segment> segments(kSegments);
    double norm = 0.0;
    for (int i = 0; i < kSegments; ++i) {
      norm += 1.0 / std::pow(static_cast<double>(i + 1), s);
    }
    for (int i = 0; i < kSegments; ++i) {
      int rank = kSegments - i;  // hottest last
      segments[i].name = StrFormat("seg%d", i);
      segments[i].scan_cost = 1.0 + 0.25 * i;
      segments[i].hit_probability =
          0.9 / std::pow(static_cast<double>(rank), s) / norm;
    }
    SegmentGraph sg = MakeSegmentGraph(segments);
    std::vector<double> probs = sg.HitProbabilities();

    Strategy file_order = Strategy::DepthFirst(sg.graph);
    double c_file = ExactExpectedCost(sg.graph, file_order, probs);

    // delta = 0.01: the sweep runs four independent PIB lifetimes, and
    // the Theorem 1 budget is per lifetime.
    Pib pib(&sg.graph, file_order, PibOptions{.delta = 0.01});
    IndependentOracle oracle(probs);
    QueryProcessor qp(&sg.graph);
    for (int i = 0; i < 60000; ++i) {
      pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
    }
    double c_pib = ExactExpectedCost(sg.graph, pib.strategy(), probs);

    std::vector<ArcId> leaves;
    for (size_t idx : OptimalScanOrder(segments)) {
      leaves.push_back(sg.graph.SuccessArcs()[idx]);
    }
    double c_opt = ExactExpectedCost(
        sg.graph, Strategy::FromLeafOrder(sg.graph, leaves), probs);

    double pib_saving = (c_file - c_pib) / c_file;
    double opt_saving = (c_file - c_opt) / c_file;
    // Theorem 1 is a probabilistic (1 - delta) guarantee, so grant a 1%
    // regression allowance per lifetime rather than demanding strict
    // domination on every seed.
    ok &= c_pib <= c_file * 1.01 && c_opt <= c_pib + 1e-9;
    if (s > 0.0 && opt_saving < prev_opt_saving - 1e-9) saving_grows = false;
    prev_opt_saving = opt_saving;
    table.AddRow({Num(s), Num(c_file), Num(c_pib), Num(c_opt),
                  StrFormat("%.1f%%", 100 * pib_saving),
                  StrFormat("%.1f%%", 100 * opt_saving)});
  }
  table.Print();

  Verdict("E10", ok && saving_grows,
          "PIB's learned scan order sits between the naive file order "
          "and the ratio optimum, and the achievable saving grows with "
          "workload skew");
  return (ok && saving_grows) ? 0 : 1;
}
