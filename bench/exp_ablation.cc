// E13 — Ablations of PIB's statistical machinery.
//
// Equation 6 packs three safeguards: (1) the Delta~ under-estimate,
// (2) the multiple-hypothesis correction over the |T| neighbours, and
// (3) the delta_i = 6 delta/(pi^2 i^2) sequential-test schedule. We
// re-run PIB on adversarial near-tie workloads (any move is a mistake)
// with each safeguard removed and measure the lifetime mistake rate:
// the full algorithm must stay below delta, the ablated variants blow
// past it.

#include <algorithm>
#include <cstdio>

#include "core/delta_estimator.h"
#include "core/expected_cost.h"
#include "core/transformations.h"
#include "harness.h"
#include "stats/chernoff.h"
#include "stats/sequential.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;
using namespace stratlearn::bench;

namespace {

enum class Variant {
  kFull,           // Equation 6 as published
  kNoBonferroni,   // trial counter ignores |T|: each neighbour tested at
                   // the whole budget's confidence
  kNoSequential,   // fixed-delta Equation 2 threshold at every test
  kGreedyMean,     // switch whenever the running Delta~ sum is positive
};

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kFull:
      return "full Equation 6";
    case Variant::kNoBonferroni:
      return "no |T| correction";
    case Variant::kNoSequential:
      return "no sequential schedule";
    case Variant::kGreedyMean:
      return "greedy (sum > 0)";
  }
  return "?";
}

/// A PIB re-implementation with the safeguards toggleable. Mirrors
/// core/pib.cc; kept here because production code should not ship the
/// unsound variants.
class AblatedPib {
 public:
  AblatedPib(const InferenceGraph* graph, Strategy initial, double delta,
             Variant variant)
      : graph_(graph),
        estimator_(graph),
        current_(std::move(initial)),
        delta_(delta),
        variant_(variant) {
    Rebuild();
  }

  bool Observe(const Trace& trace) {
    ++samples_;
    trials_ += variant_ == Variant::kNoBonferroni
                   ? 1
                   : static_cast<int64_t>(neighbors_.size());
    for (Neighbor& n : neighbors_) {
      n.delta_sum += estimator_.UnderEstimate(trace, n.strategy);
    }
    for (const Neighbor& n : neighbors_) {
      double threshold = 0.0;
      switch (variant_) {
        case Variant::kFull:
        case Variant::kNoBonferroni:
          threshold = SequentialSumThreshold(
              samples_, std::max<int64_t>(1, trials_), delta_, n.range);
          break;
        case Variant::kNoSequential:
          threshold = SumThreshold(samples_, delta_, n.range);
          break;
        case Variant::kGreedyMean:
          threshold = 0.0;
          break;
      }
      bool fire = variant_ == Variant::kGreedyMean
                      ? (samples_ >= 10 && n.delta_sum > 0.0)
                      : (n.delta_sum > 0.0 && n.delta_sum >= threshold);
      if (fire) {
        current_ = n.strategy;
        ++moves_;
        Rebuild();
        return true;
      }
    }
    return false;
  }

  const Strategy& strategy() const { return current_; }
  int moves() const { return moves_; }

 private:
  struct Neighbor {
    Strategy strategy;
    double range = 0.0;
    double delta_sum = 0.0;
  };

  void Rebuild() {
    neighbors_.clear();
    for (const SiblingSwap& swap : AllSiblingSwaps(*graph_)) {
      Neighbor n;
      n.strategy = ApplySwap(*graph_, current_, swap);
      if (n.strategy == current_) continue;
      n.range = SwapRange(*graph_, current_, swap);
      neighbors_.push_back(std::move(n));
    }
    samples_ = 0;
  }

  const InferenceGraph* graph_;
  DeltaEstimator estimator_;
  Strategy current_;
  double delta_;
  Variant variant_;
  std::vector<Neighbor> neighbors_;
  int64_t samples_ = 0;
  int64_t trials_ = 0;
  int moves_ = 0;
};

}  // namespace

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E13",
         "Ablating Equation 6's safeguards (mistake rate under "
         "near-ties, delta = 0.1)",
         seed);

  const double delta = 0.1;
  const int lifetimes = 50;
  const int64_t contexts = 6000;

  Table table({"variant", "lifetimes w/ mistake", "mistake rate",
               "total moves", "verdict"});
  double full_rate = 1.0;
  double worst_ablated = 0.0;
  for (Variant v : {Variant::kFull, Variant::kNoBonferroni,
                    Variant::kNoSequential, Variant::kGreedyMean}) {
    Rng rng(seed);  // identical stream for all variants
    int mistakes = 0, total_moves = 0;
    for (int l = 0; l < lifetimes; ++l) {
      // Flat tree, unit costs, probabilities decaying hair-thin along
      // the initial left-to-right order: the initial strategy is exactly
      // optimal and every sibling swap loses by a sliver, so ANY move is
      // a mistake — the adversarial regime for a sequential tester.
      RandomTreeOptions tree_options;
      tree_options.min_cost = 1.0;
      tree_options.max_cost = 1.0;
      RandomTree tree = MakeFlatTree(rng, 8, tree_options);
      std::vector<double> probs(tree.probs.size());
      for (size_t i = 0; i < probs.size(); ++i) {
        probs[i] = 0.4 - 0.0004 * static_cast<double>(i);
      }
      AblatedPib pib(&tree.graph, Strategy::DepthFirst(tree.graph), delta,
                     v);
      IndependentOracle oracle(probs);
      QueryProcessor qp(&tree.graph);
      double cost =
          ExactExpectedCost(tree.graph, pib.strategy(), probs);
      bool mistake = false;
      for (int64_t i = 0; i < contexts; ++i) {
        if (pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)))) {
          double next =
              ExactExpectedCost(tree.graph, pib.strategy(), probs);
          if (next > cost + 1e-9) mistake = true;
          cost = next;
        }
      }
      if (mistake) ++mistakes;
      total_moves += pib.moves();
    }
    double rate = static_cast<double>(mistakes) / lifetimes;
    if (v == Variant::kFull) {
      full_rate = rate;
    } else {
      worst_ablated = std::max(worst_ablated, rate);
    }
    table.AddRow({VariantName(v), Int(mistakes), Num(rate),
                  Int(total_moves),
                  rate <= delta ? "within delta" : "UNSOUND"});
  }
  table.Print();

  std::printf(
      "\nNote: at this horizon the pessimistic Delta~ masks the milder "
      "ablations - part (b) isolates the sequential schedule.\n");

  // (b) The schedule in isolation: a two-leaf tie with perfectly
  // anticorrelated leaves makes the exact Delta a +/-(Lambda/2) coin
  // flip - the worst case for repeated testing. A single fixed-delta
  // Equation 2 test is sound once; re-testing after every context
  // WITHOUT the delta_i schedule lets the driftless random walk cross
  // eventually (law of the iterated logarithm), while Equation 6's
  // growing threshold keeps the lifetime rate below delta.
  std::printf("\n(b) repeated testing of one null hypothesis "
              "(anticorrelated leaves, exact Delta, 60 lifetimes x 30000 "
              "tests):\n\n");
  double seq_rate = 0.0, fixed_rate = 0.0;
  {
    RandomTreeOptions unit;
    unit.min_cost = unit.max_cost = 1.0;
    Rng graph_rng(1);
    RandomTree tree = MakeFlatTree(graph_rng, 2, unit);
    Strategy theta = Strategy::DepthFirst(tree.graph);
    SiblingSwap swap = AllSiblingSwaps(tree.graph)[0];
    Strategy alt = ApplySwap(tree.graph, theta, swap);
    double range = SwapRange(tree.graph, theta, swap);  // = 4
    DeltaEstimator estimator(&tree.graph);
    MixtureOracle oracle({{0.5, {1.0, 0.0}}, {0.5, {0.0, 1.0}}});

    Table test_table({"threshold policy", "lifetimes w/ false positive",
                      "rate", "verdict"});
    const int lifetimes_b = 60;
    const int64_t tests = 30000;
    for (int policy = 0; policy < 2; ++policy) {
      Rng rng(seed + 1);
      int fired = 0;
      for (int l = 0; l < lifetimes_b; ++l) {
        double sum = 0.0;
        bool crossed = false;
        for (int64_t i = 1; i <= tests && !crossed; ++i) {
          Context ctx = oracle.Next(rng);
          sum += estimator.ExactDelta(theta, alt, ctx);
          double threshold =
              policy == 0 ? SequentialSumThreshold(i, i, delta, range)
                          : SumThreshold(i, delta, range);
          if (sum > 0.0 && sum >= threshold) crossed = true;
        }
        if (crossed) ++fired;
      }
      double rate = static_cast<double>(fired) / lifetimes_b;
      if (policy == 0) {
        seq_rate = rate;
      } else {
        fixed_rate = rate;
      }
      test_table.AddRow(
          {policy == 0 ? "Equation 6 (delta_i schedule)"
                       : "fixed delta, re-tested every context",
           Int(fired), Num(rate), rate <= delta ? "within delta" : "UNSOUND"});
    }
    test_table.Print();
  }

  bool ok = full_rate <= delta && worst_ablated > delta &&
            seq_rate <= delta && fixed_rate > delta;
  Verdict("E13", ok,
          "the full Equation 6 stays below delta in both settings; "
          "dropping the threshold entirely (greedy) or the sequential "
          "schedule (fixed-delta re-testing) breaks the guarantee, while "
          "the Delta~ pessimism masks the milder ablations at PIB level");
  return ok ? 0 : 1;
}
