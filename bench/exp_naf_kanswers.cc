// E11 — Section 5.2 applications: negation as failure and the
// first-k-answers variant.
//
// (a) NAF: deciding "not owns(x, _)" via satisficing search touches a
//     bounded number of retrievals regardless of how many possessions
//     the individual has — versus an exhaustive enumeration baseline.
// (b) k-answers: expected cost as a function of k on G_B, and the
//     orderings' relative merit as k grows (at k = #answers every
//     strategy degenerates to total cost).

#include <cmath>
#include <cstdio>

#include "apps/kanswers.h"
#include "apps/naf.h"
#include "core/expected_cost.h"
#include "datalog/parser.h"
#include "graph/examples.h"
#include "harness.h"
#include "util/string_util.h"

using namespace stratlearn;
using namespace stratlearn::bench;

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E11", "NAF + first-k-answers (Section 5.2 applications)", seed);

  // (a) NAF scaling in the number of possessions.
  std::printf("(a) pauper(X) via NAF: satisficing proof effort vs "
              "possession count\n\n");
  Table naf_table({"possessions", "satisficing retrievals",
                   "exhaustive answers (= k-all retrievals)"});
  bool naf_flat = true;
  int64_t first_satisficing = -1;
  for (int n : {1, 10, 100, 1000}) {
    SymbolTable symbols;
    Parser parser(&symbols);
    Database db;
    RuleBase rules;
    std::string program = "owns(X, Y) :- asset(X, Y).";
    for (int i = 0; i < n; ++i) {
      program += StrFormat("asset(rich, item%d).", i);
    }
    if (!parser.LoadProgram(program, &db, &rules).ok()) return 1;

    NafEvaluator naf(&db, &rules);
    Result<Atom> query = parser.ParseAtom("owns(rich, X)");
    Result<ProofResult> satisficing = naf.Prove(*query, &symbols);
    if (!satisficing.ok()) return 1;

    EvaluatorOptions all;
    all.max_answers = n;  // enumerate every possession
    Evaluator exhaustive(&db, &rules, all);
    Result<ProofResult> everything = exhaustive.Prove(*query, &symbols);
    if (!everything.ok()) return 1;

    // The satisficing proof count must not grow with n (note: the
    // Match-based retrieval enumerates candidates, so we compare answer
    // counts, the work the strategy layer controls).
    if (first_satisficing < 0) {
      first_satisficing = satisficing->answers_found;
    }
    naf_flat &= satisficing->answers_found == first_satisficing;
    naf_table.AddRow({Int(n), Int(satisficing->answers_found),
                      Int(everything->answers_found)});
  }
  naf_table.Print();

  // (b) first-k-answers on G_B.
  std::printf("\n(b) expected cost of first-k-answers search on G_B "
              "(p = 0.6 everywhere)\n\n");
  FigureTwoGraph g = MakeFigureTwo();
  std::vector<double> probs = {0.6, 0.6, 0.6, 0.6};
  Strategy dfs = Strategy::DepthFirst(g.graph);
  Strategy reversed =
      Strategy::FromLeafOrder(g.graph, {g.d_d, g.d_c, g.d_b, g.d_a});
  Table k_table({"k", "C_k[Theta_ABCD]", "C_k[Theta_DCBA]",
                 "total cost"});
  bool monotone = true;
  double prev = 0.0;
  for (int k = 1; k <= 4; ++k) {
    double c_dfs = EnumeratedExpectedCostK(g.graph, dfs, probs, k);
    double c_rev = EnumeratedExpectedCostK(g.graph, reversed, probs, k);
    monotone &= c_dfs >= prev - 1e-9;
    prev = c_dfs;
    k_table.AddRow({Int(k), Num(c_dfs), Num(c_rev),
                    Num(g.graph.TotalCost())});
  }
  k_table.Print();

  // At k = 4 (all answers) both strategies cost exactly the total.
  double c4a = EnumeratedExpectedCostK(g.graph, dfs, probs, 4);
  double c4b = EnumeratedExpectedCostK(g.graph, reversed, probs, 4);
  bool converge = std::abs(c4a - g.graph.TotalCost()) < 1e-9 &&
                  std::abs(c4b - g.graph.TotalCost()) < 1e-9;

  Verdict("E11", naf_flat && monotone && converge,
          "NAF proofs stay satisficing (1 answer) regardless of fact "
          "count; k-answer cost grows monotonically in k and converges "
          "to total cost at k = #answers, where ordering stops "
          "mattering");
  return (naf_flat && monotone && converge) ? 0 : 1;
}
