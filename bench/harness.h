#ifndef STRATLEARN_BENCH_HARNESS_H_
#define STRATLEARN_BENCH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace stratlearn::bench {

/// Minimal fixed-width table printer for the exp_* experiment drivers.
/// Every experiment binary prints: a header naming the paper artifact it
/// regenerates, one or more tables, and a PASS/FAIL verdict line for the
/// shape EXPERIMENTS.md promises. Printed tables are also recorded in
/// the process-wide JsonReport.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Adds a row; cells are pre-formatted strings.
  void AddRow(std::vector<std::string> cells);

  /// Renders with padded columns to stdout.
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Machine-readable mirror of an experiment's output: banner metadata,
/// every printed table, every verdict. When the STRATLEARN_JSON_OUT
/// environment variable names a file, each Verdict() call rewrites it
/// with the accumulated report, so exp_* binaries emit JSON trajectories
/// with no per-experiment changes.
class JsonReport {
 public:
  /// The report for this process (one experiment binary == one report).
  static JsonReport& Global();

  void SetExperiment(const std::string& exp_id, const std::string& artifact,
                     uint64_t seed, bool seed_from_env);
  void AddTable(const std::vector<std::string>& columns,
                const std::vector<std::vector<std::string>>& rows);
  void AddVerdict(const std::string& exp_id, bool ok,
                  const std::string& claim);

  std::string ToJson() const;
  /// Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteJson(const std::string& path) const;
  /// WriteJson($STRATLEARN_JSON_OUT) when that env var is set.
  void MaybeAutoWrite() const;

 private:
  struct TableData {
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };
  struct VerdictData {
    std::string exp_id;
    bool ok = false;
    std::string claim;
  };

  std::string exp_id_;
  std::string artifact_;
  uint64_t seed_ = 0;
  bool seed_from_env_ = false;
  std::vector<TableData> tables_;
  std::vector<VerdictData> verdicts_;
};

/// Prints the standard experiment banner (id, paper artifact, seed with
/// its provenance, JSON output destination if any) and registers the
/// experiment with the global JsonReport.
void Banner(const std::string& exp_id, const std::string& artifact,
            uint64_t seed);

/// Prints the verdict line: "[exp_id] SHAPE <OK|VIOLATED>: <claim>",
/// records it in the JsonReport, and auto-writes STRATLEARN_JSON_OUT.
void Verdict(const std::string& exp_id, bool ok, const std::string& claim);

/// Prints a "metrics summary" block for instrumented experiments (no
/// output when the registry is empty).
void PrintMetricsSummary(const obs::MetricsRegistry& registry);

/// Formats a double with 4 significant digits.
std::string Num(double value);
/// Formats an integer.
std::string Int(int64_t value);

/// Seed used by all experiments; override with STRATLEARN_SEED env var.
uint64_t ExperimentSeed();
/// True when STRATLEARN_SEED is set (the banner reports provenance).
bool SeedFromEnv();

}  // namespace stratlearn::bench

#endif  // STRATLEARN_BENCH_HARNESS_H_
