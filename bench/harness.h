#ifndef STRATLEARN_BENCH_HARNESS_H_
#define STRATLEARN_BENCH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace stratlearn::bench {

/// Minimal fixed-width table printer for the exp_* experiment drivers.
/// Every experiment binary prints: a header naming the paper artifact it
/// regenerates, one or more tables, and a PASS/FAIL verdict line for the
/// shape EXPERIMENTS.md promises.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Adds a row; cells are pre-formatted strings.
  void AddRow(std::vector<std::string> cells);

  /// Renders with padded columns to stdout.
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard experiment banner (id, paper artifact, seed).
void Banner(const std::string& exp_id, const std::string& artifact,
            uint64_t seed);

/// Prints the verdict line: "[exp_id] SHAPE <OK|VIOLATED>: <claim>".
void Verdict(const std::string& exp_id, bool ok, const std::string& claim);

/// Formats a double with 4 significant digits.
std::string Num(double value);
/// Formats an integer.
std::string Int(int64_t value);

/// Seed used by all experiments; override with STRATLEARN_SEED env var.
uint64_t ExperimentSeed();

}  // namespace stratlearn::bench

#endif  // STRATLEARN_BENCH_HARNESS_H_
