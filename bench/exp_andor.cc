// E16 — Note 4's hypergraph extension: learning conjunct and rule order
// in AND/OR search structures.
//
// A conjunctive rule "goal :- e1, e2, e3." is an AND node whose children
// must all succeed; ordering its conjuncts is the deductive-database
// version of join/selection ordering. We sweep the selectivity of one
// conjunct and show (a) the optimal AND-order follows failure-rate per
// unit cost, (b) AndOrPib learns both the conjunct order and the rule
// (OR) order online, approaching the brute-force optimum.

#include <cstdio>

#include "andor/and_or_pib.h"
#include "andor/and_or_strategy.h"
#include "harness.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;
using namespace stratlearn::bench;

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E16",
         "Note 4 hypergraphs: AND/OR strategy learning (conjunct + rule "
         "ordering)",
         seed);
  Rng rng(seed);

  // goal :- cheap_filter, mid_join, big_scan.   (rule 1, an AND)
  // goal :- fallback.                           (rule 2, a plain leaf)
  // Leaf costs model operator costs; we sweep cheap_filter's selectivity.
  Table table({"p(filter)", "C[naive]", "C[PIB]", "C[optimal]",
               "filter position (PIB)", "moves"});
  bool ok = true;
  for (double p_filter : {0.9, 0.5, 0.2, 0.05}) {
    AndOrGraph g;
    AndOrNodeId root = g.AddRoot(AndOrKind::kOr, "goal");
    AndOrNodeId conj = g.AddInternal(root, AndOrKind::kAnd, "rule1");
    g.AddLeaf(conj, "big_scan", 6.0);
    g.AddLeaf(conj, "mid_join", 2.0);
    AndOrNodeId filter = g.AddLeaf(conj, "cheap_filter", 0.5);
    g.AddLeaf(root, "fallback", 3.0);
    std::vector<double> probs = {0.7, 0.6, p_filter, 0.4};

    AndOrStrategy naive = AndOrStrategy::Default(g);
    double c_naive = AndOrExactExpectedCost(g, naive, probs);
    Result<AndOrOptimalResult> best = AndOrBruteForceOptimal(g, probs);
    if (!best.ok()) return 1;

    AndOrPib pib(&g, naive, AndOrPibOptions{.delta = 0.02});
    IndependentOracle oracle(probs);
    for (int i = 0; i < 30000; ++i) {
      pib.Observe(oracle.Next(rng));
    }
    double c_pib = AndOrExactExpectedCost(g, pib.strategy(), probs);

    // Where did PIB put the filter inside the AND?
    int position = -1;
    const auto& order = pib.strategy().OrderAt(conj);
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == filter) position = static_cast<int>(i);
    }
    ok &= c_pib <= c_naive + 1e-9;
    table.AddRow({Num(p_filter), Num(c_naive), Num(c_pib), Num(best->cost),
                  Int(position), Int(static_cast<int64_t>(
                                     pib.moves().size()))});
  }
  table.Print();

  // Shape: with a selective filter (low p) the filter must migrate to
  // the front of the AND, and PIB must recover most of the optimal gap.
  // Re-run the most selective configuration and check the final order.
  {
    AndOrGraph g;
    AndOrNodeId root = g.AddRoot(AndOrKind::kOr, "goal");
    AndOrNodeId conj = g.AddInternal(root, AndOrKind::kAnd, "rule1");
    g.AddLeaf(conj, "big_scan", 6.0);
    g.AddLeaf(conj, "mid_join", 2.0);
    AndOrNodeId filter = g.AddLeaf(conj, "cheap_filter", 0.5);
    g.AddLeaf(root, "fallback", 3.0);
    std::vector<double> probs = {0.7, 0.6, 0.05, 0.4};
    AndOrPib pib(&g, AndOrStrategy::Default(g),
                 AndOrPibOptions{.delta = 0.02});
    IndependentOracle oracle(probs);
    for (int i = 0; i < 30000; ++i) pib.Observe(oracle.Next(rng));
    ok &= pib.strategy().OrderAt(conj)[0] == filter;
    Result<AndOrOptimalResult> best = AndOrBruteForceOptimal(g, probs);
    double c_pib = AndOrExactExpectedCost(g, pib.strategy(), probs);
    double c_naive =
        AndOrExactExpectedCost(g, AndOrStrategy::Default(g), probs);
    ok &= (c_naive - c_pib) >= 0.8 * (c_naive - best->cost);
  }

  Verdict("E16", ok,
          "PIB on the AND/OR structure never regresses, moves the "
          "selective cheap conjunct to the front of the AND, and "
          "recovers >= 80% of the optimal saving in the selective "
          "regime");
  return ok ? 0 : 1;
}
