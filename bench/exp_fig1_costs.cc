// E1 — Figure 1 + Section 2 worked example.
//
// Regenerates the paper's expected-cost computation for G_A under the
// 60/15/25 query mix (instructor(russ)/(manolis)/(fred)): the cost pair
// {2.8, 3.7}. N.b. the paper's paragraph prints the two numbers with
// swapped labels (its own per-context costs c(Theta_1, I_2) = 2 for the
// 60%-weight russ context force C[Theta_1] = 2.8); we report the
// corrected labelling and check the pair itself.

#include <cstdio>

#include "core/expected_cost.h"
#include "datalog/parser.h"
#include "engine/query_processor.h"
#include "harness.h"
#include "util/math_util.h"
#include "workload/datalog_oracle.h"

using namespace stratlearn;
using namespace stratlearn::bench;

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E1", "Figure 1 / Section 2 worked costs (C = {2.8, 3.7})", seed);

  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  Status loaded = parser.LoadProgram(
      "instructor(X) :- prof(X). instructor(X) :- grad(X)."
      "prof(russ). grad(manolis).",
      &db, &rules);
  if (!loaded.ok()) return 1;
  Result<QueryForm> form = QueryForm::Parse("instructor(b)", &symbols);
  Result<BuiltGraph> built = BuildInferenceGraph(rules, *form, &symbols);
  if (!built.ok()) return 1;
  const InferenceGraph& graph = built->graph;

  QueryWorkload workload;
  workload.entries.push_back({{symbols.Intern("russ")}, 0.60});
  workload.entries.push_back({{symbols.Intern("manolis")}, 0.15});
  workload.entries.push_back({{symbols.Intern("fred")}, 0.25});
  DatalogOracle oracle(&built.value(), &db, workload);

  std::vector<ArcId> leaves = graph.SuccessArcs();
  Strategy theta1 = Strategy::FromLeafOrder(graph, leaves);  // prof first
  Strategy theta2 =
      Strategy::FromLeafOrder(graph, {leaves[1], leaves[0]});  // grad first

  // Per-context costs (Section 2.1's c(Theta, I) examples).
  QueryProcessor qp(&graph);
  Table contexts({"query", "weight", "c(Theta1, I)", "c(Theta2, I)"});
  const char* names[] = {"russ", "manolis", "fred"};
  double weights[] = {0.60, 0.15, 0.25};
  double paper_t1[] = {2.0, 4.0, 4.0};
  double paper_t2[] = {4.0, 2.0, 4.0};
  bool per_context_ok = true;
  for (int i = 0; i < 3; ++i) {
    Context ctx = oracle.ContextFor({symbols.Intern(names[i])});
    double c1 = qp.Cost(theta1, ctx);
    double c2 = qp.Cost(theta2, ctx);
    per_context_ok &= AlmostEqual(c1, paper_t1[i]) &&
                      AlmostEqual(c2, paper_t2[i]);
    contexts.AddRow({names[i], Num(weights[i]), Num(c1), Num(c2)});
  }
  contexts.Print();

  std::vector<double> probs = oracle.TrueMarginalProbs();
  double c_theta1 = ExactExpectedCost(graph, theta1, probs);
  double c_theta2 = ExactExpectedCost(graph, theta2, probs);

  // Monte-Carlo cross-check against real query sampling.
  Rng rng(seed);
  double mc1 = MonteCarloExpectedCost(graph, theta1, oracle, 400000, rng);
  double mc2 = MonteCarloExpectedCost(graph, theta2, oracle, 400000, rng);

  std::printf("\nExpected costs under p = <%.2f, %.2f>:\n", probs[0],
              probs[1]);
  Table costs({"strategy", "analytic C[Theta]", "measured (MC)",
               "paper value"});
  costs.AddRow({"Theta1 = <R_p D_p R_g D_g>", Num(c_theta1), Num(mc1),
                "2.8 (printed as Theta2's; erratum)"});
  costs.AddRow({"Theta2 = <R_g D_g R_p D_p>", Num(c_theta2), Num(mc2),
                "3.7 (printed as Theta1's; erratum)"});
  costs.Print();

  bool ok = per_context_ok && AlmostEqual(c_theta1, 2.8) &&
            AlmostEqual(c_theta2, 3.7) && std::abs(mc1 - 2.8) < 0.02 &&
            std::abs(mc2 - 3.7) < 0.02;
  Verdict("E1", ok,
          "per-context costs {2,4} x {4,2} and the expected-cost pair "
          "{2.8, 3.7} reproduce exactly; prof-first wins under the 60/15 "
          "mix");
  return ok ? 0 : 1;
}
