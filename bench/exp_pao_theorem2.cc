// E6 — Theorem 2 / Equation 7: PAO's sample complexity and guarantee.
//
// Table (a): the per-retrieval quota m(d_i) for a sweep of (epsilon,
// delta) on G_A — the sample-complexity surface Equation 7 defines.
// Table (b): empirical success of the guarantee
//   Pr[C[Theta_pao] <= C[Theta_opt] + epsilon] >= 1 - delta
// over independent PAO runs on G_A (near-tie distribution, the hardest
// case) and on random AOT trees.

#include <cstdio>

#include "core/expected_cost.h"
#include "core/pao.h"
#include "core/upsilon.h"
#include "graph/examples.h"
#include "harness.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;
using namespace stratlearn::bench;

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E6", "Theorem 2 / Equation 7: PAO sample quotas and guarantee",
         seed);
  Rng rng(seed);
  FigureOneGraph g = MakeFigureOne();

  std::printf("(a) Equation 7 quota m(d_i) per retrieval of G_A "
              "(n = 2, F_not = 2)\n\n");
  Table quotas({"epsilon", "delta=0.2", "delta=0.1", "delta=0.05"});
  for (double epsilon : {2.0, 1.0, 0.5, 0.25}) {
    std::vector<std::string> row = {Num(epsilon)};
    for (double delta : {0.2, 0.1, 0.05}) {
      PaoOptions options;
      options.epsilon = epsilon;
      options.delta = delta;
      row.push_back(Int(Pao::ComputeQuotas(g.graph, options)[0]));
    }
    quotas.AddRow(row);
  }
  quotas.Print();

  std::printf("\n(b) empirical guarantee over independent runs\n\n");
  Table runs_table({"graph", "epsilon", "delta", "runs", "violations",
                    "mean contexts"});
  bool ok = true;

  // G_A near-tie.
  {
    std::vector<double> probs = {0.48, 0.52};
    Result<OptimalResult> opt = BruteForceOptimal(g.graph, probs);
    const double epsilon = 0.5, delta = 0.2;
    const int runs = 40;
    int violations = 0;
    int64_t contexts = 0;
    for (int r = 0; r < runs; ++r) {
      IndependentOracle oracle(probs);
      Rng run_rng = rng.Fork();
      PaoOptions options;
      options.epsilon = epsilon;
      options.delta = delta;
      Result<PaoResult> result = Pao::Run(g.graph, oracle, run_rng, options);
      if (!result.ok()) return 1;
      contexts += result->contexts_used;
      double cost = ExactExpectedCost(g.graph, result->strategy, probs);
      if (cost > opt->cost + epsilon) ++violations;
    }
    double rate = static_cast<double>(violations) / runs;
    ok &= rate <= delta;
    runs_table.AddRow({"G_A near-tie", Num(epsilon), Num(delta), Int(runs),
                       Int(violations), Int(contexts / runs)});
  }

  // Random trees.
  {
    const double delta = 0.2;
    const int runs = 15;
    int violations = 0;
    int64_t contexts = 0;
    for (int r = 0; r < runs; ++r) {
      RandomTree tree = MakeRandomTree(rng);
      double epsilon = 0.3 * tree.graph.TotalCost();
      Result<UpsilonResult> opt = UpsilonAot(tree.graph, tree.probs);
      if (!opt.ok()) return 1;
      IndependentOracle oracle(tree.probs);
      Rng run_rng = rng.Fork();
      PaoOptions options;
      options.epsilon = epsilon;
      options.delta = delta;
      options.max_contexts = 20'000'000;
      Result<PaoResult> result =
          Pao::Run(tree.graph, oracle, run_rng, options);
      if (!result.ok()) {
        std::printf("run %d: %s\n", r, result.status().ToString().c_str());
        return 1;
      }
      contexts += result->contexts_used;
      double cost =
          ExactExpectedCost(tree.graph, result->strategy, tree.probs);
      if (cost > opt->expected_cost + epsilon) ++violations;
    }
    double rate = static_cast<double>(violations) / runs;
    ok &= rate <= delta;
    runs_table.AddRow({"random AOT trees", "0.3*totalcost", Num(delta),
                       Int(runs), Int(violations), Int(contexts / runs)});
  }
  runs_table.Print();

  Verdict("E6", ok,
          "quotas scale as (nF/eps)^2 ln(2n/delta); the epsilon-"
          "optimality guarantee holds with violation rate <= delta");
  return ok ? 0 : 1;
}
