// E12 — PALO ([CG91], Section 3.2 closing remarks): hill-climb like PIB
// but STOP once the current strategy is certified epsilon-locally
// optimal. We compare PALO against open-ended PIB on the same random
// graphs: PALO terminates with a bounded sample count, its final
// strategy is genuinely epsilon-locally optimal (checked against true
// costs), and larger epsilon terminates sooner.

#include <cstdio>

#include "core/expected_cost.h"
#include "core/palo.h"
#include "core/pib.h"
#include "harness.h"
#include "obs/observer.h"
#include "stats/running_stats.h"
#include "util/string_util.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;
using namespace stratlearn::bench;

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E12", "PALO: certified epsilon-local optima vs open-ended PIB",
         seed);
  Rng rng(seed);

  const int kTrials = 15;
  const int64_t kBudget = 150000;
  Table table({"epsilon", "finished", "mean contexts", "mean moves",
               "local-opt holds"});
  bool all_certified = true;
  double prev_mean_contexts = 0.0;
  bool faster_with_looser = true;

  for (double epsilon_scale : {0.30, 0.15, 0.08}) {
    RunningStats contexts, moves;
    int finished = 0, certified = 0;
    Rng sweep_rng(seed + static_cast<uint64_t>(epsilon_scale * 1000));
    for (int t = 0; t < kTrials; ++t) {
      RandomTree tree = MakeRandomTree(sweep_rng);
      double epsilon = epsilon_scale * tree.graph.TotalCost();
      Palo palo(&tree.graph, Strategy::DepthFirst(tree.graph),
                PaloOptions{.delta = 0.1, .epsilon = epsilon});
      IndependentOracle oracle(tree.probs);
      QueryProcessor qp(&tree.graph);
      for (int64_t i = 0; i < kBudget && !palo.Finished(); ++i) {
        palo.Observe(qp.Execute(palo.strategy(), oracle.Next(sweep_rng)));
      }
      if (!palo.Finished()) continue;
      ++finished;
      contexts.Add(static_cast<double>(palo.contexts_processed()));
      moves.Add(static_cast<double>(palo.moves_made()));
      // Certificate check against ground truth.
      double current =
          ExactExpectedCost(tree.graph, palo.strategy(), tree.probs);
      bool local_opt = true;
      for (const SiblingSwap& swap : AllSiblingSwaps(tree.graph)) {
        Strategy alt = ApplySwap(tree.graph, palo.strategy(), swap);
        if (ExactExpectedCost(tree.graph, alt, tree.probs) <
            current - epsilon - 1e-9) {
          local_opt = false;
        }
      }
      if (local_opt) ++certified;
    }
    all_certified &= certified == finished;
    if (epsilon_scale < 0.30 && finished > 0 &&
        contexts.mean() < prev_mean_contexts - 1e-9) {
      faster_with_looser = false;
    }
    prev_mean_contexts = contexts.mean();
    table.AddRow({Num(epsilon_scale), StrFormat("%d/%d", finished, kTrials),
                  Num(contexts.mean()), Num(moves.mean()),
                  StrFormat("%d/%d", certified, finished)});
  }
  table.Print();

  // Contrast: PIB never stops — after the same budget it is still
  // collecting statistics. This run is instrumented so the experiment's
  // output is self-describing (arc attempts, wall time, moves).
  {
    RandomTree tree = MakeRandomTree(rng);
    obs::MetricsRegistry registry;
    obs::Observer observer(&registry, nullptr);
    Pib pib(&tree.graph, Strategy::DepthFirst(tree.graph),
            PibOptions{.delta = 0.1}, &observer);
    IndependentOracle oracle(tree.probs);
    QueryProcessor qp(&tree.graph, &observer);
    for (int64_t i = 0; i < 20000; ++i) {
      pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
    }
    std::printf("\nPIB after 20000 contexts: still running (anytime, no "
                "stopping rule), %zu moves so far\n",
                pib.moves().size());
    PrintMetricsSummary(registry);
  }

  Verdict("E12", all_certified && faster_with_looser,
          "every PALO run that stopped is a true epsilon-local optimum, "
          "and looser epsilon stops sooner");
  return (all_certified && faster_with_looser) ? 0 : 1;
}
