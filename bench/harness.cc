#include "harness.h"

#include <cstdio>
#include <cstdlib>

#include "obs/json_writer.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace stratlearn::bench {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("  ");
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::string rule;
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  std::printf("  %s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
  JsonReport::Global().AddTable(columns_, rows_);
}

JsonReport& JsonReport::Global() {
  static JsonReport* report = new JsonReport();
  return *report;
}

void JsonReport::SetExperiment(const std::string& exp_id,
                               const std::string& artifact, uint64_t seed,
                               bool seed_from_env) {
  exp_id_ = exp_id;
  artifact_ = artifact;
  seed_ = seed;
  seed_from_env_ = seed_from_env;
}

void JsonReport::AddTable(const std::vector<std::string>& columns,
                          const std::vector<std::vector<std::string>>& rows) {
  tables_.push_back({columns, rows});
}

void JsonReport::AddVerdict(const std::string& exp_id, bool ok,
                            const std::string& claim) {
  verdicts_.push_back({exp_id, ok, claim});
}

std::string JsonReport::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("experiment").Value(exp_id_);
  w.Key("artifact").Value(artifact_);
  w.Key("seed").Value(static_cast<int64_t>(seed_));
  w.Key("seed_from_env").Value(seed_from_env_);
  w.Key("tables").BeginArray();
  for (const TableData& t : tables_) {
    w.BeginObject();
    w.Key("columns").BeginArray();
    for (const std::string& c : t.columns) w.Value(c);
    w.EndArray();
    w.Key("rows").BeginArray();
    for (const auto& row : t.rows) {
      w.BeginArray();
      for (const std::string& cell : row) w.Value(cell);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("verdicts").BeginArray();
  for (const VerdictData& v : verdicts_) {
    w.BeginObject();
    w.Key("exp_id").Value(v.exp_id);
    w.Key("ok").Value(v.ok);
    w.Key("claim").Value(v.claim);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

bool JsonReport::WriteJson(const std::string& path) const {
  // Atomic (temp + rename): Verdict() rewrites this file after every
  // table, and a killed experiment must not leave a torn JSON for the
  // report scrapers.
  return WriteFileAtomic(path, ToJson() + "\n");
}

void JsonReport::MaybeAutoWrite() const {
  const char* path = std::getenv("STRATLEARN_JSON_OUT");
  if (path == nullptr || path[0] == '\0') return;
  if (!WriteJson(path)) {
    std::fprintf(stderr, "warning: cannot write STRATLEARN_JSON_OUT=%s\n",
                 path);
  }
}

void Banner(const std::string& exp_id, const std::string& artifact,
            uint64_t seed) {
  JsonReport::Global().SetExperiment(exp_id, artifact, seed, SeedFromEnv());
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", exp_id.c_str(), artifact.c_str());
  std::printf("seed = %llu (%s)\n", static_cast<unsigned long long>(seed),
              SeedFromEnv() ? "env STRATLEARN_SEED" : "default");
  const char* json_out = std::getenv("STRATLEARN_JSON_OUT");
  if (json_out != nullptr && json_out[0] != '\0') {
    std::printf("json report -> %s\n", json_out);
  }
  std::printf("================================================================\n");
}

void Verdict(const std::string& exp_id, bool ok, const std::string& claim) {
  std::printf("[%s] SHAPE %s: %s\n", exp_id.c_str(),
              ok ? "OK" : "VIOLATED", claim.c_str());
  JsonReport::Global().AddVerdict(exp_id, ok, claim);
  JsonReport::Global().MaybeAutoWrite();
}

void PrintMetricsSummary(const obs::MetricsRegistry& registry) {
  std::string summary = registry.Summary();
  if (summary.empty()) return;
  std::printf("metrics summary:\n%s", summary.c_str());
}

std::string Num(double value) { return FormatDouble(value, 4); }

std::string Int(int64_t value) {
  return StrFormat("%lld", static_cast<long long>(value));
}

uint64_t ExperimentSeed() {
  const char* env = std::getenv("STRATLEARN_SEED");
  if (env != nullptr) {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 19920602;  // PODS'92, San Diego
}

bool SeedFromEnv() { return std::getenv("STRATLEARN_SEED") != nullptr; }

}  // namespace stratlearn::bench
