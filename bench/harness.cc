#include "harness.h"

#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace stratlearn::bench {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("  ");
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::string rule;
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  std::printf("  %s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void Banner(const std::string& exp_id, const std::string& artifact,
            uint64_t seed) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", exp_id.c_str(), artifact.c_str());
  std::printf("seed = %llu\n", static_cast<unsigned long long>(seed));
  std::printf("================================================================\n");
}

void Verdict(const std::string& exp_id, bool ok, const std::string& claim) {
  std::printf("[%s] SHAPE %s: %s\n", exp_id.c_str(),
              ok ? "OK" : "VIOLATED", claim.c_str());
}

std::string Num(double value) { return FormatDouble(value, 4); }

std::string Int(int64_t value) {
  return StrFormat("%lld", static_cast<long long>(value));
}

uint64_t ExperimentSeed() {
  const char* env = std::getenv("STRATLEARN_SEED");
  if (env != nullptr) {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 19920602;  // PODS'92, San Diego
}

}  // namespace stratlearn::bench
