// E5 — Theorem 1: PIB's lifetime mistake probability is below delta.
//
// A "mistake" is any hill-climbing move to a strategy with strictly
// higher true expected cost. We run many independent PIB lifetimes over
// random AOT graphs (including adversarial near-tie distributions, where
// mistakes are easiest) and count lifetimes containing at least one
// mistake.

#include <cstdio>

#include "core/expected_cost.h"
#include "core/pib.h"
#include "harness.h"
#include "workload/random_tree.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;
using namespace stratlearn::bench;

namespace {

struct RunResult {
  bool any_mistake = false;
  int moves = 0;
};

RunResult RunLifetime(const InferenceGraph& graph,
                      const std::vector<double>& probs, double delta,
                      int64_t contexts, Rng& rng) {
  Strategy initial = Strategy::DepthFirst(graph);
  Pib pib(&graph, initial, PibOptions{.delta = delta});
  IndependentOracle oracle(probs);
  QueryProcessor qp(&graph);
  RunResult result;
  double cost = ExactExpectedCost(graph, initial, probs);
  for (int64_t i = 0; i < contexts; ++i) {
    if (pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)))) {
      double next = ExactExpectedCost(graph, pib.strategy(), probs);
      if (next > cost + 1e-9) result.any_mistake = true;
      cost = next;
      ++result.moves;
    }
  }
  return result;
}

}  // namespace

int main() {
  uint64_t seed = ExperimentSeed();
  Banner("E5", "Theorem 1: Pr[any cost-increasing move] < delta", seed);
  Rng rng(seed);

  Table table({"workload", "delta", "lifetimes", "with mistakes",
               "mistake rate", "total moves"});
  bool ok = true;

  struct Config {
    const char* name;
    bool near_tie;
    double delta;
    int lifetimes;
    int64_t contexts;
  };
  for (const Config& cfg :
       {Config{"random trees", false, 0.1, 60, 1500},
        Config{"near-tie (adversarial)", true, 0.1, 60, 1500},
        Config{"near-tie (adversarial)", true, 0.25, 60, 1500}}) {
    int mistakes = 0;
    int moves = 0;
    for (int l = 0; l < cfg.lifetimes; ++l) {
      RandomTree tree = MakeRandomTree(rng);
      std::vector<double> probs = tree.probs;
      if (cfg.near_tie) {
        // All experiments share (almost) the same probability: every
        // neighbour difference is ~0, so any move is (nearly) a mistake.
        for (size_t i = 0; i < probs.size(); ++i) {
          probs[i] = 0.35 + 0.0005 * static_cast<double>(i);
        }
      }
      RunResult r = RunLifetime(tree.graph, probs, cfg.delta,
                                cfg.contexts, rng);
      if (r.any_mistake) ++mistakes;
      moves += r.moves;
    }
    double rate = static_cast<double>(mistakes) / cfg.lifetimes;
    // Allow binomial sampling slack on top of delta.
    ok &= rate <= cfg.delta + 0.05;
    table.AddRow({cfg.name, Num(cfg.delta), Int(cfg.lifetimes),
                  Int(mistakes), Num(rate), Int(moves)});
  }
  table.Print();

  Verdict("E5", ok,
          "across lifetimes (including adversarial near-ties) the "
          "fraction containing any cost-increasing move stays below "
          "delta");
  return ok ? 0 : 1;
}
