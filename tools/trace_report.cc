// trace_report — offline analytics over recorded JSONL event traces.
//
// Single-trace mode:
//   trace_report <trace.jsonl> [--delta=D] [--hot-share=H] [--json]
//       Replays the trace through the StrategyProfiler and prints the
//       same aggregated per-arc attribution report the live CLI
//       produces (text, or the JSON object with --json).
//
// Diff mode (the bench regression gate):
//   trace_report --baseline=a.jsonl --candidate=b.jsonl
//                [--threshold=R] [--abs-threshold=A] [--min-attempts=N]
//       Aggregates both traces and compares them arc by arc. A
//       regression fires when the candidate's mean traversal cost for
//       an arc exceeds the baseline's by more than the relative
//       threshold (default 10%) and the absolute threshold, with both
//       runs having at least --min-attempts samples of that arc.
//
// Exit codes: 0 = no regression, 1 = regression detected (diff mode
// only), 2 = usage / IO / parse error. Traces are the JSONL form
// written by `stratlearn_cli --trace-out=*.jsonl` (one JSON object per
// line); unknown event types are skipped so newer traces stay readable.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "obs/profiler.h"
#include "obs/trace_reader.h"
#include "util/string_util.h"
#include "verify/diagnostics.h"

namespace stratlearn {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitError = 2;

struct Options {
  std::string trace;      // single-trace mode
  std::string baseline;   // diff mode
  std::string candidate;  // diff mode
  double delta = 0.05;
  double hot_share = 0.10;
  double threshold = 0.10;
  double abs_threshold = 1e-9;
  int64_t min_attempts = 10;
  bool json = false;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: trace_report <trace.jsonl> [--delta=D --hot-share=H --json]\n"
      "       trace_report --baseline=a.jsonl --candidate=b.jsonl\n"
      "                    [--threshold=R --abs-threshold=A "
      "--min-attempts=N]\n");
  return kExitError;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return kExitError;
}

/// Replays `path` into `profiler`; reports events replayed and skipped
/// on stderr so stdout stays a pure report. A trace with zero replayable
/// events is diagnosed into `sink` (V-T001): an empty baseline would
/// make every comparison vacuous, silently gating nothing.
Status LoadTrace(const std::string& path, obs::StrategyProfiler* profiler,
                 verify::DiagnosticSink* sink) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  obs::TraceReader reader(profiler);
  Status replayed = reader.ReplayStream(in);
  if (!replayed.ok()) {
    return Status::InvalidArgument(path + ": " + replayed.message());
  }
  std::fprintf(stderr, "%s: %lld events replayed, %lld skipped\n",
               path.c_str(), static_cast<long long>(reader.events()),
               static_cast<long long>(reader.skipped()));
  if (reader.events() == 0) {
    sink->set_file(path);
    sink->Error("V-T001", "",
                reader.skipped() > 0
                    ? StrFormat("trace has no replayable events (%lld "
                                "lines skipped); a report over it is "
                                "vacuous",
                                static_cast<long long>(reader.skipped()))
                    : "trace is empty; a report over it is vacuous",
                "record the trace with `stratlearn_cli "
                "--trace-out=*.jsonl`, or check the path");
  }
  return Status::OK();
}

/// Renders `sink` to stderr and returns the error exit code. Call only
/// when the sink has blocking findings.
int FailDiagnostics(const verify::DiagnosticSink& sink) {
  std::fprintf(stderr, "%s", sink.RenderText().c_str());
  return kExitError;
}

int RunSingle(const Options& options) {
  obs::StrategyProfiler profiler(
      obs::ProfilerOptions{options.delta, options.hot_share});
  verify::DiagnosticSink sink;
  Status loaded = LoadTrace(options.trace, &profiler, &sink);
  if (!loaded.ok()) return Fail(loaded.ToString());
  if (sink.HasBlocking()) return FailDiagnostics(sink);
  std::string report =
      options.json ? profiler.ReportJson() + "\n" : profiler.ReportText();
  std::printf("%s", report.c_str());
  return kExitOk;
}

int RunDiff(const Options& options) {
  obs::ProfilerOptions profiler_options{options.delta, options.hot_share};
  obs::StrategyProfiler baseline(profiler_options);
  obs::StrategyProfiler candidate(profiler_options);
  verify::DiagnosticSink sink;
  Status loaded = LoadTrace(options.baseline, &baseline, &sink);
  if (!loaded.ok()) return Fail(loaded.ToString());
  loaded = LoadTrace(options.candidate, &candidate, &sink);
  if (!loaded.ok()) return Fail(loaded.ToString());
  if (sink.HasBlocking()) return FailDiagnostics(sink);

  obs::ProfileDiffOptions diff_options;
  diff_options.rel_threshold = options.threshold;
  diff_options.abs_threshold = options.abs_threshold;
  diff_options.min_attempts = options.min_attempts;
  obs::ProfileDiff diff = DiffProfiles(baseline, candidate, diff_options);
  std::printf("%s", diff.ReportText().c_str());
  return diff.has_regression ? kExitRegression : kExitOk;
}

int Main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--baseline=")) {
      options.baseline = arg.substr(11);
    } else if (StartsWith(arg, "--candidate=")) {
      options.candidate = arg.substr(12);
    } else if (StartsWith(arg, "--delta=")) {
      options.delta = std::atof(arg.c_str() + 8);
    } else if (StartsWith(arg, "--hot-share=")) {
      options.hot_share = std::atof(arg.c_str() + 12);
    } else if (StartsWith(arg, "--threshold=")) {
      options.threshold = std::atof(arg.c_str() + 12);
    } else if (StartsWith(arg, "--abs-threshold=")) {
      options.abs_threshold = std::atof(arg.c_str() + 16);
    } else if (StartsWith(arg, "--min-attempts=")) {
      options.min_attempts = std::atoll(arg.c_str() + 15);
    } else if (arg == "--json") {
      options.json = true;
    } else if (StartsWith(arg, "--")) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else if (options.trace.empty()) {
      options.trace = arg;
    } else {
      return Usage();
    }
  }

  bool diff_mode = !options.baseline.empty() || !options.candidate.empty();
  if (diff_mode) {
    if (options.baseline.empty() || options.candidate.empty() ||
        !options.trace.empty()) {
      return Usage();
    }
    return RunDiff(options);
  }
  if (options.trace.empty()) return Usage();
  return RunSingle(options);
}

}  // namespace
}  // namespace stratlearn

int main(int argc, char** argv) { return stratlearn::Main(argc, argv); }
