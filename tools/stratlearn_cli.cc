// stratlearn command-line tool.
//
// Subcommands:
//   query <program.dl> <atom>
//       Prove a query with the reference SLD evaluator.
//   dot <program.dl> <query-form>
//       Unfold the rules for a query form and print the inference graph
//       as Graphviz DOT.
//   learn-pib <program.dl> <query-form> <workload.txt> [options]
//       Watch the query stream with PIB and print the learned strategy.
//   learn-pao <program.dl> <query-form> <workload.txt> [options]
//       Run PAO sampling and print the (probably approximately) optimal
//       strategy.
//   eval <program.dl> <query-form> <workload.txt> [strategy-file]
//       Report expected costs: the given (or default) strategy, the
//       Smith fact-count baseline, and the workload optimum.
//   explain <program.dl> <query-form> <workload.txt> [options]
//       Run a learner (--learner=pib|pao) with the strategy profiler
//       attached and print the learned strategy as an annotated
//       inference-graph tree (visit order, p^ +/- eps, cost share, HOT
//       markers), the learner's estimate state (climb history and
//       Delta~ margins for PIB, quota progress for PAO), and the
//       per-arc attribution report. Output is deterministic for a
//       fixed seed.
//   bench [--workload=all|<name>] [--repetitions=N] [--warmup=N]
//         [--seed=S] [--out=DIR] [--fake-clock] [--timestamp=ISO]
//         [--list]
//       Run the canonical perf workloads (Datalog load, Figure-1/2
//       execution, PIB climb, PAO quota run, Upsilon ordering) with
//       warmup + N timed repetitions on the monotonic clock, print a
//       p50/p90/p99 table, and write one BENCH_<workload>.json (run
//       manifest + latency percentiles + throughput + peak RSS) per
//       workload into --out. --fake-clock reports deterministic
//       work-units as latencies, making the files byte-reproducible
//       for a fixed seed — the form the CI regression gate diffs with
//       tools/bench_compare. See README "Performance tracking".
//   health <series.jsonl> --alerts=RULES [--format=text|json]
//          [--health-out=FILE] [--recovery=POLICY]
//       Replay a serialized "stratlearn-timeseries-v1" file through the
//       statistical health monitor: the drift detectors (Hoeffding
//       two-window p^ test, Page-Hinkley mean-cost test, counter-delta
//       rate anomalies) and the declarative alert rules from a
//       "stratlearn-alerts v1" file. Prints the health report (text or
//       "stratlearn-health-v1" JSON). Because the series is serialized
//       at round-trip precision, the offline replay reaches decisions
//       byte-identical to the live run's. Exit code: 0 healthy, 1
//       alerts firing, 2 usage error (bad flags, unreadable inputs,
//       alert rules with verify errors).
//   audit <audit.jsonl> [--format=text|json]
//       Render a "stratlearn-audit v1" decision-audit file (written by
//       learn-pib/learn-pao --audit-out) as a deterministic convergence
//       report: the certificate table with per-decision efficiency
//       ratios (samples used vs. the Theorem 1-3 bound), the
//       per-learner delta-budget ledger, the regret curve and the run
//       summary. Exit code: 0 clean, 1 findings (overspent ledger,
//       non-conservative certificate), 2 usage/malformed input.
//   verify <files...> [--project=DIR] [--format=text|json|sarif]
//          [--profile=FILE] [--suppressions=FILE] [--suppress-out=FILE]
//          [--Werror]
//       Statically analyse artifacts without running anything: Datalog
//       programs (*.dl, with optional '% verify-form:',
//       '% verify-strategy:', '% verify-config:' and
//       '% verify-dataflow-cap:' directives), serialized graphs
//       ("stratlearn-graph v1"), AND/OR trees ("stratlearn-andor v1"),
//       strategies ("stratlearn-strategy v1") and learner configs
//       (*.cfg). Semantic passes run on top of the structural ones: a
//       fixpoint adornment dataflow over rule bases (V-D...) and an
//       abstract cost interpretation over strategies (V-X...), whose
//       probability intervals a --profile StrategyProfiler JSON report
//       narrows from the default [0, 1]. --project walks DIR
//       recursively and verifies every recognised artifact in a
//       deterministic context-threading order (programs before the
//       strategies/configs that need their graphs).
//       --suppressions applies a "stratlearn-suppressions v1" baseline
//       file; --suppress-out writes one capturing the current findings.
//       --format=sarif emits a deterministic SARIF 2.1.0 log for CI
//       annotation uploads. Exit code: 0 clean, 1 warnings, 2 errors
//       (--Werror promotes warnings). See README "Static verification"
//       for the diagnostic-code table.
//
// Options: --delta=D --epsilon=E --queries=N --theorem3 --seed=S
//          --learner=pib|pao --strategy-out=FILE --metrics-out=FILE
//          --trace-out=FILE --profile-out=FILE --format=text|json
//          --Werror
//
// Fault tolerance & checkpointing (learn-pib / learn-pao):
//   --fault-plan=FILE       load a "stratlearn-faultplan v1" file and run
//                           retrievals on the resilient path (retries,
//                           circuit breaker, cost budget; see README
//                           "Fault tolerance & checkpointing")
//   --checkpoint=FILE       crash-safe learner checkpoint (CRC-32
//                           checksummed, written atomically); the final
//                           state is always written on success
//   --checkpoint-every=N    additionally checkpoint every N queries
//   --resume                restore the checkpoint before running; a
//                           missing/corrupt checkpoint degrades to a
//                           V-K001 warning and a fresh start (exit 0)
//   --halt-after=K          (learn-pib) stop with exit code 3 after K
//                           queries without checkpointing — a scripted
//                           crash for kill-and-resume tests
//
// Every graph-based subcommand re-checks its loaded program and graph
// with the error-level verify passes first, so malformed inputs fail
// fast with exit code 2 instead of producing meaningless learner runs.
//
// Observability (learn-pib / learn-pao / eval / explain): --metrics-out
// writes a JSON metrics snapshot, --trace-out writes an event trace (a
// *.jsonl path gets one JSON object per line; any other extension gets
// a chrome://tracing-loadable JSON array), --profile-out writes the
// strategy profiler's aggregated JSON report, and a metrics summary is
// printed for the non-explain commands. Output paths that cannot be
// opened fail the command up front, before any work runs. See
// docs/OBSERVABILITY.md for the schema.
//
// Streaming telemetry (learn-pib / learn-pao):
//   --metrics-export=FILE   periodically overwrite FILE with an
//                           OpenMetrics / Prometheus text dump of the
//                           registry (atomic rename, scraper-safe); a
//                           final dump is always written at end of run
//   --export-every=N        export cadence in clock units (default:
//                           1000000 steady-clock us, or 100 queries on
//                           the fake clock)
//   --timeseries-out=FILE   write the windowed time-series ("stratlearn-
//                           timeseries v1" JSONL: per-window counter
//                           deltas/rates, histogram activity, per-arc
//                           p-hat / mean cost) at end of run; render it
//                           with tools/stats_report
//   --timeseries-every=N    window length in clock units (same defaults
//                           as --export-every)
//   --obs-clock=MODE        'steady' (default) stamps windows with real
//                           steady-clock microseconds; 'fake' advances
//                           the telemetry clock one unit per query, so
//                           runs are byte-deterministic for a fixed seed
//
// Health monitoring (learn-pib / learn-pao):
//   --alerts=FILE           load "stratlearn-alerts v1" rules and attach
//                           the statistical health monitor to the
//                           windowed time-series (implies the window
//                           collector even without --timeseries-out).
//                           Drift/alert transitions are traced
//                           (--trace-out), annotated onto the serialized
//                           series, and exported as alert_firing.<id>
//                           gauges (--metrics-export); the run prints a
//                           one-line health summary at the end. Rules
//                           with verify errors (V-AL...) fail the run up
//                           front with exit code 2.
//   --health-out=FILE       write the "stratlearn-health-v1" JSON report
//                           at end of run (requires --alerts)
//
// Drift reaction & self-healing (learn-pib / learn-pao):
//   --recovery=FILE         load a "stratlearn-recovery v1" policy
//                           (verified through the V-RC passes; errors
//                           exit 2) and attach the recovery controller
//                           to the health monitor (requires --alerts).
//                           Drift/alert transitions matched by a policy
//                           rule trigger graduated actions instead of a
//                           cold restart: rebaseline (rewind the
//                           sequential trial counter, widening epsilon),
//                           rollback (restore PIB state from the newest
//                           known-good ring checkpoint), restart_scoped
//                           (reset only the drifted subtree's tallies)
//                           and quarantine (force the arc's circuit
//                           breaker open with a half-open probe). Each
//                           applied action is traced as a RecoveryEvent
//                           and, with --audit-out, certified so
//                           tools/audit_verify --recovery=FILE
//                           re-derives why it fired. A `ring N`
//                           directive retains N health-stamped
//                           "<checkpoint>.ring<k>" rollback slots
//                           (requires --checkpoint). See README "Fault
//                           tolerance" and docs/OBSERVABILITY.md.
//
// Decision audit (learn-pib / learn-pao):
//   --audit-out=FILE        write the "stratlearn-audit v1" stream: one
//                           PAC decision certificate per statistically
//                           significant learner decision (climb
//                           commit/reject, sequential-test stop, PAO
//                           quota transition) with the exact counts,
//                           thresholds and the delta_i drawn from the
//                           running delta-budget ledger, plus windowed
//                           regret records against the incumbent and
//                           oracle strategies. tools/audit_verify
//                           re-derives every certificate from the
//                           --trace-out JSONL; `stratlearn_cli audit`
//                           renders the convergence report. Without the
//                           flag no certificate is ever emitted, so
//                           runs stay byte-identical to earlier builds.
//   --audit-every=N         subsample high-volume *reject* certificates
//                           to every N-th test round (commit/stop/quota
//                           certificates are never subsampled)
//   --audit-window=N        queries per regret-accounting window
//                           (default 100)
//
// Program files are Datalog ("instructor(X) :- prof(X). prof(russ).").
// Workload files hold one query per line: "<weight> <arg1> [<arg2> ...]";
// '#' starts a comment.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/expected_cost.h"
#include "robust/checkpoint.h"
#include "robust/fault_injector.h"
#include "robust/fault_plan.h"
#include "robust/recovery/controller.h"
#include "core/explain.h"
#include "core/pao.h"
#include "core/pib.h"
#include "core/smith.h"
#include "core/upsilon.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "engine/query_processor.h"
#include "graph/serialization.h"
#include "obs/audit/audit_log.h"
#include "obs/health/monitor.h"
#include "obs/health/series_io.h"
#include "obs/observer.h"
#include "obs/openmetrics.h"
#include "obs/perf/bench_runner.h"
#include "obs/perf/workloads.h"
#include "obs/profiler.h"
#include "obs/sinks.h"
#include "obs/timer.h"
#include "obs/timeseries.h"
#include "util/string_util.h"
#include "verify/diagnostics.h"
#include "verify/sarif.h"
#include "verify/suppressions.h"
#include "verify/verify.h"
#include "workload/datalog_oracle.h"

#include "offline_audit.h"
#include "offline_health.h"

namespace stratlearn {
namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct CliOptions {
  double delta = 0.05;
  double epsilon = 0.5;
  int64_t queries = 5000;
  bool theorem3 = false;
  uint64_t seed = 1;
  std::string learner = "pib";
  std::string format = "text";
  bool werror = false;
  // verify subcommand.
  std::string project;
  std::string profile;
  std::string suppressions;
  std::string suppress_out;
  int64_t max_contexts = 0;  // 0 = the LearnerConfig default
  std::string strategy_out;
  std::string metrics_out;
  std::string trace_out;
  std::string profile_out;
  // Streaming telemetry.
  std::string metrics_export;
  int64_t export_every = 0;  // 0 = auto for the clock mode
  std::string timeseries_out;
  int64_t timeseries_every = 0;  // 0 = auto for the clock mode
  std::string obs_clock = "steady";
  // Health monitoring.
  std::string alerts;
  std::string health_out;
  // Drift reaction (recovery controller).
  std::string recovery;
  // Decision audit.
  std::string audit_out;
  int64_t audit_every = 1;
  int64_t audit_window = 100;
  // Fault tolerance & checkpointing.
  std::string fault_plan;
  std::string checkpoint;
  int64_t checkpoint_every = 0;
  bool resume = false;
  int64_t halt_after = 0;
  // bench subcommand.
  std::string workload = "all";
  int repetitions = 10;
  int warmup = 2;
  std::string out_dir = ".";
  bool fake_clock = false;
  std::string timestamp;
  bool list = false;
  std::vector<std::string> positional;
};

/// Observability wiring for one CLI command: a registry, an optional
/// file trace sink chosen by --trace-out's extension, an optional
/// StrategyProfiler (always on for `explain`, otherwise only with
/// --profile-out), and the streaming-telemetry pair — a
/// TimeSeriesCollector (--timeseries-out) teed onto the same event
/// stream and a PeriodicOpenMetricsExporter (--metrics-export) — all
/// sharing one clock domain chosen by --obs-clock. All output paths are
/// opened (or probe-written) in the constructor so a bad path fails the
/// command before any work runs, instead of silently dropping telemetry
/// at the end; check `status` right after construction.
/// Regret baselines for the decision audit log: expected per-query
/// costs of the incumbent (initial) and oracle-optimal strategies under
/// the workload's true probabilities. Commands that know the truth
/// (learn-pib / learn-pao, whose workload generator is exact) fill this
/// in; `have` stays false otherwise and the audit log's regret records
/// carry realized cost only.
struct AuditBaselines {
  bool have = false;
  double incumbent = 0.0;
  double oracle = 0.0;
};

struct CliObserver {
  /// `recovery` (optional) is the drift-reaction controller built from
  /// --recovery=FILE; its hook is installed on the health monitor so
  /// every closed window's transitions are matched against the policy.
  /// `resume` (optional) is the loaded checkpoint of a --resume run:
  /// its retained time-series windows are restored into the collector
  /// and replayed through the monitor (decide-only — the controller is
  /// not yet live) so detector, alert, recovery-transcript and cooldown
  /// state match the uninterrupted run's, and its audit cursor reopens
  /// the --audit-out stream in place of truncating it.
  explicit CliObserver(const CliOptions& options, bool want_profiler = false,
                       const AuditBaselines& baselines = {},
                       robust::RecoveryController* recovery = nullptr,
                       const robust::CheckpointData* resume = nullptr) {
    if (options.obs_clock != "steady" && options.obs_clock != "fake") {
      status =
          Status::InvalidArgument("--obs-clock must be 'steady' or 'fake'");
      return;
    }
    fake_clock = options.obs_clock == "fake";
    if (options.export_every < 0 || options.timeseries_every < 0) {
      status = Status::InvalidArgument(
          "--export-every / --timeseries-every must be positive");
      return;
    }
    if (!options.trace_out.empty()) {
      trace_is_jsonl = options.trace_out.size() >= 6 &&
                       options.trace_out.rfind(".jsonl") ==
                           options.trace_out.size() - 6;
      if (trace_is_jsonl) {
        file_sink = std::make_unique<obs::JsonlSink>(options.trace_out);
        if (!static_cast<obs::JsonlSink*>(file_sink.get())->ok()) {
          status = CannotOpen("--trace-out", options.trace_out);
          return;
        }
      } else {
        file_sink = std::make_unique<obs::ChromeTraceSink>(options.trace_out);
        if (!static_cast<obs::ChromeTraceSink*>(file_sink.get())->ok()) {
          status = CannotOpen("--trace-out", options.trace_out);
          return;
        }
      }
      // Surface post-Close / post-failure event loss in the metrics
      // snapshot instead of only on stderr.
      obs::Counter& dropped =
          registry.GetCounter("obs.trace_events_dropped");
      if (trace_is_jsonl) {
        static_cast<obs::JsonlSink*>(file_sink.get())
            ->set_drop_counter(&dropped);
      } else {
        static_cast<obs::ChromeTraceSink*>(file_sink.get())
            ->set_drop_counter(&dropped);
      }
    }
    if (!options.metrics_out.empty()) {
      metrics_stream.open(options.metrics_out);
      if (!metrics_stream) {
        status = CannotOpen("--metrics-out", options.metrics_out);
        return;
      }
    }
    if (!options.profile_out.empty()) {
      profile_stream.open(options.profile_out);
      if (!profile_stream) {
        status = CannotOpen("--profile-out", options.profile_out);
        return;
      }
    }
    if (want_profiler || !options.profile_out.empty()) {
      profiler = std::make_unique<obs::StrategyProfiler>(
          obs::ProfilerOptions{.delta = options.delta});
    }
    if (options.alerts.empty() && !options.health_out.empty()) {
      status = Status::InvalidArgument("--health-out requires --alerts=FILE");
      return;
    }
    if (recovery != nullptr && options.alerts.empty()) {
      // The controller is driven by the monitor's window hook; without
      // alert rules there is no monitor and the policy could never fire.
      status = Status::InvalidArgument("--recovery requires --alerts=FILE");
      return;
    }
    // The health monitor consumes closed windows, so --alerts implies
    // the collector even when the series itself is not written out.
    if (!options.timeseries_out.empty() || !options.alerts.empty()) {
      if (!options.timeseries_out.empty()) {
        timeseries_stream.open(options.timeseries_out);
        if (!timeseries_stream) {
          status = CannotOpen("--timeseries-out", options.timeseries_out);
          return;
        }
      }
      obs::TimeSeriesOptions ts_options;
      ts_options.interval_us =
          ResolveInterval(options.timeseries_every, fake_clock);
      timeseries =
          std::make_unique<obs::TimeSeriesCollector>(&registry, ts_options);
    }
    if (!options.alerts.empty()) {
      Result<std::string> rules_text = ReadFile(options.alerts);
      if (!rules_text.ok()) {
        status = rules_text.status();
        return;
      }
      verify::DiagnosticSink rules_sink;
      rules_sink.set_file(options.alerts);
      obs::health::AlertRuleSet rules =
          verify::ParseAlertRules(*rules_text, &rules_sink);
      if (rules_sink.HasBlocking()) {
        // Same contract as the other pre-run guards: verify errors in
        // an input artifact are exit code 2, with the findings rendered.
        status = Status::FailedPrecondition(
            StrFormat("alert rules failed verification:\n%s",
                      rules_sink.RenderText().c_str()));
        return;
      }
      if (!rules_sink.empty()) {
        // Warnings (e.g. V-AL005 empty rule set) don't block the run.
        std::fprintf(stderr, "%s", rules_sink.RenderText().c_str());
      }
      if (!options.health_out.empty()) {
        health_stream.open(options.health_out);
        if (!health_stream) {
          status = CannotOpen("--health-out", options.health_out);
          return;
        }
      }
      health = std::make_unique<obs::health::HealthMonitor>(
          std::move(rules), obs::health::HealthOptions{}, &registry);
      // Delivered outside the collector's lock, so the monitor's events
      // can flow back through the sink tee (which includes the
      // collector, annotating the just-closed window).
      timeseries->SetWindowCallback([this](const obs::TimeSeriesWindow& w) {
        health->OnWindow(w);
      });
      if (recovery != nullptr) {
        health->set_recovery_hook(recovery->Hook());
      }
    }
    if (resume != nullptr && resume->has_timeseries && timeseries != nullptr) {
      // Reinstate the checkpointed windows, then replay them through the
      // monitor before the run's own events start. The checkpoint holds
      // raw window lines without a file header, so synthesize the one
      // LoadTimeSeries expects. Failures degrade to a warning: losing
      // detector warm-up is recoverable, refusing to resume is not.
      std::ostringstream series_text;
      series_text << "{\"schema\":\"stratlearn-timeseries-v1\",\"interval_us\":"
                  << ResolveInterval(options.timeseries_every, fake_clock)
                  << ",\"capacity\":512,\"windows_closed\":"
                  << resume->ts_next_index << ",\"windows_evicted\":"
                  << resume->ts_evicted << "}\n";
      for (const std::string& line : resume->ts_windows) {
        series_text << line << "\n";
      }
      std::istringstream series_in{series_text.str()};
      obs::health::LoadedSeries series;
      Status loaded = obs::health::LoadTimeSeries(series_in, &series);
      if (loaded.ok()) {
        loaded = timeseries->Restore(resume->ts_window_start,
                                     resume->ts_next_index,
                                     resume->ts_evicted,
                                     std::move(series.windows));
      }
      if (!loaded.ok()) {
        std::fprintf(stderr,
                     "warning: cannot restore checkpointed time series "
                     "(%s); detector state starts fresh\n",
                     loaded.ToString().c_str());
      } else if (health != nullptr) {
        // Decide-only replay: drift/alert transitions re-annotate the
        // restored windows (the sink tee is not assembled yet, so
        // nothing reaches the trace or audit log) and the recovery
        // hook rebuilds the controller's transcript and cooldowns.
        health->set_event_sink(timeseries.get());
        for (const obs::TimeSeriesWindow& w : timeseries->Windows()) {
          health->OnWindow(w);
        }
      }
    }
    if (!options.audit_out.empty()) {
      if (options.audit_every < 1 || options.audit_window < 1) {
        status = Status::InvalidArgument(
            "--audit-every / --audit-window must be >= 1");
        return;
      }
      obs::AuditLogOptions audit_options;
      audit_options.delta_budget = options.delta;
      audit_options.window = options.audit_window;
      audit_options.have_baselines = baselines.have;
      audit_options.incumbent_expected_cost = baselines.incumbent;
      audit_options.oracle_expected_cost = baselines.oracle;
      if (resume != nullptr && resume->has_audit) {
        // Continue the killed run's stream: the cursor truncates its
        // trailing summary and restores the writer's counters/ledger.
        audit_log = std::make_unique<obs::AuditLog>(
            options.audit_out, audit_options, resume->audit);
      } else {
        audit_log =
            std::make_unique<obs::AuditLog>(options.audit_out, audit_options);
      }
      if (!audit_log->ok()) {
        status = CannotOpen("--audit-out", options.audit_out);
        return;
      }
    }
    if (!options.metrics_export.empty()) {
      exporter = std::make_unique<obs::PeriodicOpenMetricsExporter>(
          options.metrics_export,
          ResolveInterval(options.export_every, fake_clock));
      // Probe dump: scrapers see the file immediately, and an unwritable
      // path fails the command up front like every other output flag.
      if (!exporter->ExportNow(registry)) {
        status = CannotOpen("--metrics-export", options.metrics_export);
        return;
      }
    }
    std::vector<obs::TraceSink*> sinks;
    if (file_sink != nullptr) sinks.push_back(file_sink.get());
    if (audit_log != nullptr) sinks.push_back(audit_log.get());
    if (profiler != nullptr) sinks.push_back(profiler.get());
    if (timeseries != nullptr) sinks.push_back(timeseries.get());
    obs::TraceSink* active = nullptr;
    if (sinks.size() == 1) {
      active = sinks.front();
    } else if (sinks.size() > 1) {
      tee = std::make_unique<obs::TeeSink>(sinks);
      active = tee.get();
    }
    if (health != nullptr) health->set_event_sink(active);
    observer = std::make_unique<obs::Observer>(&registry, active);
    if (audit_log != nullptr) {
      observer->set_audit_enabled(true);
      observer->set_audit_every(options.audit_every);
    }
    // Fake clock: event timestamps and qp.query_wall_us durations come
    // from the query ordinal, not the steady clock, so two identical
    // runs produce byte-identical telemetry. A resumed run re-enters
    // the clock domain at the checkpointed query ordinal — the first
    // post-resume event must not be stamped t_us=0.
    if (fake_clock) {
      observer->UseManualClock();
      if (resume != nullptr) {
        observer->AdvanceManualClock(resume->queries_done);
      }
    }
  }

  /// Clock-unit cadence: an explicit flag wins; otherwise one window /
  /// export per steady-clock second, or per 100 queries on the fake
  /// clock.
  static int64_t ResolveInterval(int64_t flag_value, bool fake) {
    if (flag_value > 0) return flag_value;
    return fake ? 100 : 1'000'000;
  }

  /// Telemetry clock: `queries_done` on the fake clock, the observer's
  /// steady-clock microseconds otherwise.
  int64_t Now(int64_t queries_done) const {
    return fake_clock ? queries_done : observer->NowUs();
  }

  bool NeedsTicks() const {
    return timeseries != nullptr || exporter != nullptr;
  }

  /// Per-query cadence driver: closes elapsed time-series windows and
  /// writes an OpenMetrics dump when its interval has passed. Cheap when
  /// neither flag is set (two null checks).
  void Tick(int64_t queries_done) {
    if (fake_clock) observer->AdvanceManualClock(queries_done);
    if (!NeedsTicks()) return;
    int64_t now = Now(queries_done);
    last_now_ = now;
    if (timeseries != nullptr) timeseries->AdvanceTo(now);
    if (exporter != nullptr) exporter->MaybeExport(now, registry);
  }

  /// Closes (finalises) the trace, optionally prints the summary, and
  /// writes the --metrics-out / --profile-out reports to the streams
  /// opened up front. Mid-run and end-of-run I/O failures (disk filled
  /// up, pipe closed) degrade to a single stderr warning per output:
  /// the learner's result was already computed and printed, and losing
  /// telemetry must not turn a successful run into a failed one.
  Status Finish(const CliOptions& options, bool print_summary = true) {
    if (file_sink != nullptr) {
      file_sink->Close();
      if (TraceSinkFailed()) {
        std::fprintf(stderr,
                     "warning: trace output to '%s' is incomplete (write "
                     "failure mid-run)\n",
                     options.trace_out.c_str());
      } else {
        std::printf("trace written to %s\n", options.trace_out.c_str());
      }
    }
    if (audit_log != nullptr) {
      audit_log->Close();
      if (audit_log->failed()) {
        std::fprintf(stderr,
                     "warning: audit log '%s' is incomplete (write failure "
                     "mid-run)\n",
                     options.audit_out.c_str());
      } else {
        std::printf("audit log written to %s (%lld certificates)\n",
                    options.audit_out.c_str(),
                    static_cast<long long>(
                        audit_log->certificates_written()));
      }
    }
    if (print_summary) {
      std::string summary = registry.Summary();
      if (!summary.empty()) {
        std::printf("metrics summary:\n%s", summary.c_str());
      }
    }
    if (metrics_stream.is_open()) {
      metrics_stream << registry.SnapshotJson() << "\n";
      metrics_stream.flush();
      if (!metrics_stream) {
        std::fprintf(stderr,
                     "warning: failed writing metrics to '%s' (disk full "
                     "or closed pipe?); continuing without it\n",
                     options.metrics_out.c_str());
      } else {
        std::printf("metrics written to %s\n", options.metrics_out.c_str());
      }
    }
    if (profile_stream.is_open() && profiler != nullptr) {
      profile_stream << profiler->ReportJson() << "\n";
      profile_stream.flush();
      if (!profile_stream) {
        std::fprintf(stderr,
                     "warning: failed writing profile to '%s' (disk full "
                     "or closed pipe?); continuing without it\n",
                     options.profile_out.c_str());
      } else {
        std::printf("profile written to %s\n", options.profile_out.c_str());
      }
    }
    if (timeseries != nullptr) {
      // Close the trailing partial window at the last tick (fake clock)
      // or at real end-of-run time, then write the series. The health
      // monitor (if attached) sees that final window via the callback
      // before anything below reads its state.
      timeseries->Finalize(fake_clock ? last_now_ : observer->NowUs());
      if (timeseries_stream.is_open()) {
        timeseries_stream << timeseries->SerializeJsonl();
        timeseries_stream.flush();
        if (!timeseries_stream) {
          std::fprintf(stderr,
                       "warning: failed writing time series to '%s' (disk "
                       "full or closed pipe?); continuing without it\n",
                       options.timeseries_out.c_str());
        } else {
          std::printf("time series written to %s (%lld windows)\n",
                      options.timeseries_out.c_str(),
                      static_cast<long long>(
                          timeseries->windows_closed()));
        }
      }
    }
    if (health != nullptr) {
      std::printf("health: %s (%lld windows, %lld drift series active, "
                  "%lld alert rules firing)\n",
                  health->AnyFiring() ? "ALERTS FIRING" : "healthy",
                  static_cast<long long>(health->windows_seen()),
                  static_cast<long long>(health->drift_active()),
                  static_cast<long long>(health->FiringCount()));
      if (health_stream.is_open()) {
        health_stream << health->RenderJson();
        health_stream.flush();
        if (!health_stream) {
          std::fprintf(stderr,
                       "warning: failed writing health report to '%s' "
                       "(disk full or closed pipe?); continuing without "
                       "it\n",
                       options.health_out.c_str());
        } else {
          std::printf("health report written to %s\n",
                      options.health_out.c_str());
        }
      }
    }
    if (exporter != nullptr) {
      // Final dump so the exported file reflects end-of-run state even
      // when the run ended mid-interval.
      if (exporter->ExportNow(registry)) {
        std::printf("metrics exported to %s (%lld dumps)\n",
                    exporter->path().c_str(),
                    static_cast<long long>(exporter->exports()));
      }
    }
    return Status::OK();
  }

  /// Whether the file trace sink disabled itself after a write failure.
  bool TraceSinkFailed() const {
    if (file_sink == nullptr) return false;
    if (trace_is_jsonl) {
      return static_cast<const obs::JsonlSink*>(file_sink.get())->failed();
    }
    return static_cast<const obs::ChromeTraceSink*>(file_sink.get())
        ->failed();
  }

  static Status CannotOpen(const char* flag, const std::string& path) {
    return Status::Internal(StrFormat("cannot open '%s' for %s output",
                                      path.c_str(), flag));
  }

  Status status;
  obs::MetricsRegistry registry;
  bool trace_is_jsonl = false;
  bool fake_clock = false;
  std::unique_ptr<obs::TraceSink> file_sink;
  std::unique_ptr<obs::AuditLog> audit_log;
  std::unique_ptr<obs::StrategyProfiler> profiler;
  std::unique_ptr<obs::TimeSeriesCollector> timeseries;
  std::unique_ptr<obs::health::HealthMonitor> health;
  std::unique_ptr<obs::PeriodicOpenMetricsExporter> exporter;
  std::unique_ptr<obs::TeeSink> tee;
  std::unique_ptr<obs::Observer> observer;
  std::ofstream metrics_stream;
  std::ofstream profile_stream;
  std::ofstream timeseries_stream;
  std::ofstream health_stream;
  /// Last telemetry-clock reading seen by Tick (fake-clock finalise).
  int64_t last_now_ = 0;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Exit code for a failed Status: verification failures
/// (FailedPrecondition, from verify::GuardLoadedProgram) use the verify
/// contract's error exit code 2; everything else stays 1.
int FailStatus(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return status.code() == StatusCode::kFailedPrecondition ? 2 : 1;
}

/// Builds the fault injector for --fault-plan, or null without the flag.
/// A --recovery run without a fault plan still gets a zero-fault
/// injector: the quarantine action drives the circuit breakers, which
/// live in the injector, and synthesizing it unconditionally keeps the
/// checkpoint's has-injector bit consistent across kill and resume.
Result<std::unique_ptr<robust::FaultInjector>> MakeInjector(
    const CliOptions& options) {
  if (options.fault_plan.empty()) {
    if (!options.recovery.empty()) {
      return std::make_unique<robust::FaultInjector>(robust::FaultPlan{});
    }
    return std::unique_ptr<robust::FaultInjector>();
  }
  Result<robust::FaultPlan> plan = robust::FaultPlan::Load(options.fault_plan);
  if (!plan.ok()) return plan.status();
  std::printf("fault plan: %s%s\n", options.fault_plan.c_str(),
              plan->ZeroFault() ? " (zero-fault)" : "");
  return std::make_unique<robust::FaultInjector>(*std::move(plan));
}

/// Loads and verifies the --recovery policy file. The V-RC passes are
/// the loader, so a policy that fails verification fails the run up
/// front with exit code 2 (FailedPrecondition), same as alert rules.
Result<robust::RecoveryPolicy> LoadRecoveryPolicy(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  verify::DiagnosticSink sink;
  sink.set_file(path);
  robust::RecoveryPolicy policy = verify::ParseRecoveryPolicy(*text, &sink);
  if (sink.HasBlocking()) {
    return Status::FailedPrecondition(
        StrFormat("recovery policy failed verification:\n%s",
                  sink.RenderText().c_str()));
  }
  if (!sink.empty()) {
    std::fprintf(stderr, "%s", sink.RenderText().c_str());
  }
  return policy;
}

/// Graceful degradation on an unusable checkpoint (missing file, failed
/// CRC, malformed payload, state that does not fit this run): one
/// V-K001 warning diagnostic on stderr, then the caller starts from the
/// initial state. Deliberately not an error — a learner that survives a
/// crash must also survive losing its checkpoint.
void WarnBadCheckpoint(const std::string& path, const Status& status) {
  verify::DiagnosticSink sink;
  sink.set_file(path);
  sink.Warning("V-K001", "", status.message(),
               "cannot resume from this checkpoint; starting from the "
               "initial state instead (delete the file or drop --resume "
               "to silence this)");
  std::fprintf(stderr, "%s", sink.RenderText().c_str());
}

/// Pre-flight check of the learner parameters (and, for PAO, the
/// Equation 7/8 quotas against `graph`). Returns 0 to proceed; exit
/// code 2 on error-level findings — notably delta outside (0, 1), which
/// would otherwise abort inside the Pib constructor.
int CheckLearnerConfig(const CliOptions& options,
                       const InferenceGraph* graph) {
  verify::LearnerConfig config;
  config.delta = options.delta;
  config.epsilon = options.epsilon;
  config.queries = options.queries;
  config.theorem3 = options.theorem3;
  if (options.max_contexts > 0) config.max_contexts = options.max_contexts;
  verify::DiagnosticSink sink;
  verify::VerifyLearnerConfig(config, graph, &sink);
  if (graph != nullptr) {
    verify::VerifyQuotaFeasibility(config, *graph, nullptr, &sink);
  }
  if (!sink.HasBlocking()) return 0;
  std::fprintf(stderr, "%s", sink.RenderText().c_str());
  return 2;
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--delta=")) {
      options.delta = std::atof(arg.c_str() + 8);
    } else if (StartsWith(arg, "--epsilon=")) {
      options.epsilon = std::atof(arg.c_str() + 10);
    } else if (StartsWith(arg, "--queries=")) {
      options.queries = std::atoll(arg.c_str() + 10);
    } else if (arg == "--theorem3") {
      options.theorem3 = true;
    } else if (StartsWith(arg, "--seed=")) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (StartsWith(arg, "--strategy-out=")) {
      options.strategy_out = arg.substr(15);
    } else if (StartsWith(arg, "--metrics-out=")) {
      options.metrics_out = arg.substr(14);
    } else if (StartsWith(arg, "--trace-out=")) {
      options.trace_out = arg.substr(12);
    } else if (StartsWith(arg, "--profile-out=")) {
      options.profile_out = arg.substr(14);
    } else if (StartsWith(arg, "--metrics-export=")) {
      options.metrics_export = arg.substr(17);
    } else if (StartsWith(arg, "--export-every=")) {
      options.export_every = std::atoll(arg.c_str() + 15);
    } else if (StartsWith(arg, "--timeseries-out=")) {
      options.timeseries_out = arg.substr(17);
    } else if (StartsWith(arg, "--timeseries-every=")) {
      options.timeseries_every = std::atoll(arg.c_str() + 19);
    } else if (StartsWith(arg, "--obs-clock=")) {
      options.obs_clock = arg.substr(12);
    } else if (StartsWith(arg, "--alerts=")) {
      options.alerts = arg.substr(9);
    } else if (StartsWith(arg, "--health-out=")) {
      options.health_out = arg.substr(13);
    } else if (StartsWith(arg, "--recovery=")) {
      options.recovery = arg.substr(11);
    } else if (StartsWith(arg, "--audit-out=")) {
      options.audit_out = arg.substr(12);
    } else if (StartsWith(arg, "--audit-every=")) {
      options.audit_every = std::atoll(arg.c_str() + 14);
    } else if (StartsWith(arg, "--audit-window=")) {
      options.audit_window = std::atoll(arg.c_str() + 15);
    } else if (StartsWith(arg, "--fault-plan=")) {
      options.fault_plan = arg.substr(13);
    } else if (StartsWith(arg, "--checkpoint=")) {
      options.checkpoint = arg.substr(13);
    } else if (StartsWith(arg, "--checkpoint-every=")) {
      options.checkpoint_every = std::atoll(arg.c_str() + 19);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (StartsWith(arg, "--halt-after=")) {
      options.halt_after = std::atoll(arg.c_str() + 13);
    } else if (StartsWith(arg, "--learner=")) {
      options.learner = arg.substr(10);
    } else if (StartsWith(arg, "--workload=")) {
      options.workload = arg.substr(11);
    } else if (StartsWith(arg, "--repetitions=")) {
      options.repetitions = std::atoi(arg.c_str() + 14);
    } else if (StartsWith(arg, "--warmup=")) {
      options.warmup = std::atoi(arg.c_str() + 9);
    } else if (StartsWith(arg, "--out=")) {
      options.out_dir = arg.substr(6);
    } else if (arg == "--fake-clock") {
      options.fake_clock = true;
    } else if (StartsWith(arg, "--timestamp=")) {
      options.timestamp = arg.substr(12);
    } else if (arg == "--list") {
      options.list = true;
    } else if (StartsWith(arg, "--format=")) {
      options.format = arg.substr(9);
    } else if (arg == "--Werror") {
      options.werror = true;
    } else if (StartsWith(arg, "--project=")) {
      options.project = arg.substr(10);
    } else if (StartsWith(arg, "--profile=")) {
      options.profile = arg.substr(10);
    } else if (StartsWith(arg, "--suppressions=")) {
      options.suppressions = arg.substr(15);
    } else if (StartsWith(arg, "--suppress-out=")) {
      options.suppress_out = arg.substr(15);
    } else if (StartsWith(arg, "--max-contexts=")) {
      options.max_contexts = std::atoll(arg.c_str() + 15);
    } else {
      options.positional.push_back(arg);
    }
  }
  return options;
}

/// Shared loading pipeline for the graph-based subcommands.
struct Loaded {
  SymbolTable symbols;
  Database db;
  RuleBase rules;
  BuiltGraph built;
  QueryWorkload workload;
};

Result<std::unique_ptr<Loaded>> Load(const std::string& program_path,
                                     const std::string& form_text,
                                     const std::string& workload_path) {
  auto loaded = std::make_unique<Loaded>();
  Result<std::string> program = ReadFile(program_path);
  if (!program.ok()) return program.status();
  Parser parser(&loaded->symbols);
  STRATLEARN_RETURN_IF_ERROR(
      parser.LoadProgram(*program, &loaded->db, &loaded->rules));

  Result<QueryForm> form = QueryForm::Parse(form_text, &loaded->symbols);
  if (!form.ok()) return form.status();
  Result<BuiltGraph> built =
      BuildInferenceGraph(loaded->rules, *form, &loaded->symbols);
  if (!built.ok()) return built.status();
  loaded->built = std::move(*built);
  STRATLEARN_RETURN_IF_ERROR(verify::GuardLoadedProgram(
      loaded->rules, loaded->built, loaded->db, loaded->symbols));

  if (!workload_path.empty()) {
    Result<std::string> workload_text = ReadFile(workload_path);
    if (!workload_text.ok()) return workload_text.status();
    int line_number = 0;
    for (const std::string& raw : Split(*workload_text, '\n')) {
      ++line_number;
      std::string clipped = raw.substr(0, raw.find('#'));
      std::string_view line = Trim(clipped);
      if (line.empty()) continue;
      std::vector<std::string> fields;
      for (const std::string& f : Split(line, ' ')) {
        if (!Trim(f).empty()) fields.emplace_back(Trim(f));
      }
      if (fields.size() < 2) {
        return Status::InvalidArgument(StrFormat(
            "workload line %d needs '<weight> <args...>'", line_number));
      }
      QueryWorkload::Entry entry;
      entry.weight = std::atof(fields[0].c_str());
      if (entry.weight <= 0.0) {
        return Status::InvalidArgument(
            StrFormat("workload line %d has non-positive weight",
                      line_number));
      }
      for (size_t i = 1; i < fields.size(); ++i) {
        entry.args.push_back(loaded->symbols.Intern(fields[i]));
      }
      if (entry.args.size() != loaded->built.form.bound.size()) {
        return Status::InvalidArgument(StrFormat(
            "workload line %d has %zu args; the query form expects %zu "
            "(free positions still take a placeholder constant)",
            line_number, entry.args.size(),
            loaded->built.form.bound.size()));
      }
      loaded->workload.entries.push_back(std::move(entry));
    }
    if (loaded->workload.entries.empty()) {
      return Status::InvalidArgument("workload file has no entries");
    }
  }
  return loaded;
}

/// Regret baselines for --audit-out: the incumbent is the strategy the
/// learner starts from, the oracle is Upsilon_AOT on the workload's
/// true probabilities. Computed only when the audit log is requested
/// (UpsilonAot is a full ordering pass); an unsupported graph degrades
/// to realized-cost-only regret records instead of failing the run.
AuditBaselines MakeAuditBaselines(const CliOptions& options,
                                  const Loaded& loaded,
                                  const Strategy& initial,
                                  const std::vector<double>& truth) {
  AuditBaselines baselines;
  if (options.audit_out.empty()) return baselines;
  Result<UpsilonResult> optimal = UpsilonAot(loaded.built.graph, truth);
  if (!optimal.ok()) return baselines;
  baselines.have = true;
  baselines.incumbent = ExactExpectedCost(loaded.built.graph, initial, truth);
  baselines.oracle =
      ExactExpectedCost(loaded.built.graph, optimal->strategy, truth);
  return baselines;
}

void PrintStrategyReport(const Loaded& loaded, const char* label,
                         const Strategy& strategy,
                         const std::vector<double>& truth) {
  std::printf("%-14s %s\n", label,
              strategy.ToString(loaded.built.graph).c_str());
  std::printf("%-14s expected cost %.4f\n", "",
              ExactExpectedCost(loaded.built.graph, strategy, truth));
}

Status MaybeWriteStrategy(const CliOptions& options,
                          const Strategy& strategy) {
  if (options.strategy_out.empty()) return Status::OK();
  std::ofstream out(options.strategy_out);
  if (!out) {
    return Status::Internal("cannot write '" + options.strategy_out + "'");
  }
  out << strategy.Serialize() << "\n";
  std::printf("strategy written to %s\n", options.strategy_out.c_str());
  return Status::OK();
}

int CmdQuery(const CliOptions& options) {
  if (options.positional.size() != 2) {
    return Fail("usage: stratlearn_cli query <program.dl> <atom>");
  }
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  Result<std::string> program = ReadFile(options.positional[0]);
  if (!program.ok()) return Fail(program.status().ToString());
  Status loaded = parser.LoadProgram(*program, &db, &rules);
  if (!loaded.ok()) return Fail(loaded.ToString());
  Result<Atom> atom = parser.ParseAtom(options.positional[1]);
  if (!atom.ok()) return Fail(atom.status().ToString());
  Evaluator evaluator(&db, &rules);
  Result<ProofResult> proof = evaluator.Prove(*atom, &symbols);
  if (!proof.ok()) return Fail(proof.status().ToString());
  std::printf("%s: %s (%lld reductions, %lld retrievals)\n",
              atom->ToString(symbols).c_str(),
              proof->proved ? "proved" : "not provable",
              static_cast<long long>(proof->reductions),
              static_cast<long long>(proof->retrievals));
  return proof->proved ? 0 : 2;
}

int CmdDot(const CliOptions& options) {
  if (options.positional.size() != 2) {
    return Fail("usage: stratlearn_cli dot <program.dl> <query-form>");
  }
  Result<std::unique_ptr<Loaded>> loaded =
      Load(options.positional[0], options.positional[1], "");
  if (!loaded.ok()) return FailStatus(loaded.status());
  std::printf("%s", (*loaded)->built.graph.ToDot("inference_graph").c_str());
  return 0;
}

int CmdLearnPib(const CliOptions& options) {
  if (options.positional.size() != 3) {
    return Fail(
        "usage: stratlearn_cli learn-pib <program.dl> <query-form> "
        "<workload.txt> [--delta= --queries= --strategy-out= --seed= "
        "--metrics-out= --trace-out= --profile-out= --metrics-export= "
        "--export-every= --timeseries-out= --timeseries-every= "
        "--obs-clock=steady|fake --alerts= --health-out= --recovery= "
        "--audit-out= --audit-every= --audit-window= --fault-plan= "
        "--checkpoint= --checkpoint-every= --resume --halt-after=]");
  }
  if (options.resume && options.checkpoint.empty()) {
    return Fail("--resume requires --checkpoint=FILE");
  }
  Result<std::unique_ptr<Loaded>> loaded_or = Load(
      options.positional[0], options.positional[1], options.positional[2]);
  if (!loaded_or.ok()) return FailStatus(loaded_or.status());
  Loaded& loaded = **loaded_or;
  if (int rc = CheckLearnerConfig(options, nullptr); rc != 0) return rc;

  DatalogOracle oracle(&loaded.built, &loaded.db, loaded.workload);
  std::vector<double> truth = oracle.TrueMarginalProbs();
  Strategy initial = Strategy::DepthFirst(loaded.built.graph);
  PrintStrategyReport(loaded, "initial:", initial, truth);

  Result<std::unique_ptr<robust::FaultInjector>> injector_or =
      MakeInjector(options);
  if (!injector_or.ok()) return Fail(injector_or.status().ToString());
  robust::FaultInjector* injector = injector_or->get();

  // Drift-reaction controller (--recovery): built before the observer so
  // its hook can be installed on the health monitor, but kept in
  // decide-only mode until every live-action target exists.
  std::unique_ptr<robust::RecoveryController> controller;
  std::unique_ptr<robust::CheckpointRing> ring;
  if (!options.recovery.empty()) {
    Result<robust::RecoveryPolicy> policy = LoadRecoveryPolicy(options.recovery);
    if (!policy.ok()) return FailStatus(policy.status());
    if (policy->ring > 0 && !options.checkpoint.empty()) {
      ring = std::make_unique<robust::CheckpointRing>(options.checkpoint,
                                                      policy->ring);
    }
    std::printf("recovery policy: %s (%zu rules%s)\n",
                options.recovery.c_str(), policy->rules.size(),
                ring != nullptr
                    ? StrFormat(", ring of %lld", (long long)policy->ring)
                        .c_str()
                    : "");
    controller =
        std::make_unique<robust::RecoveryController>(*std::move(policy));
  }

  // Load the checkpoint before the observer exists: the restored
  // time-series windows and audit cursor feed its construction. Any
  // failure degrades to a fresh start — checkpointing accelerates
  // recovery, it must never block it. When the main checkpoint is
  // unusable and a recovery ring exists, the newest known-good ring
  // slot is the fallback; only when both paths fail does the single
  // V-K001 warning fire.
  robust::CheckpointData resume_data;
  bool resumed = false;
  if (options.resume) {
    auto validate = [&](Result<robust::CheckpointData>& ckpt) -> Status {
      if (!ckpt.ok()) return ckpt.status();
      if (ckpt->learner != "pib") {
        return Status::FailedPrecondition(
            "checkpoint belongs to learner '" + ckpt->learner + "', not pib");
      }
      if (ckpt->seed != options.seed) {
        return Status::FailedPrecondition(StrFormat(
            "checkpoint was taken with --seed=%llu, this run uses %llu",
            static_cast<unsigned long long>(ckpt->seed),
            static_cast<unsigned long long>(options.seed)));
      }
      if (ckpt->has_injector != (injector != nullptr)) {
        return Status::FailedPrecondition(
            "checkpoint and this run disagree on --fault-plan");
      }
      return Status::OK();
    };
    Result<robust::CheckpointData> ckpt =
        robust::LoadCheckpoint(options.checkpoint, loaded.built.graph);
    Status restored = validate(ckpt);
    if (restored.ok()) {
      resume_data = *std::move(ckpt);
      resumed = true;
      std::printf("resumed from %s at query %lld\n",
                  options.checkpoint.c_str(),
                  static_cast<long long>(resume_data.queries_done));
    } else if (ring != nullptr) {
      Result<robust::CheckpointData> slot =
          ring->LoadNewestGood(loaded.built.graph);
      Status slot_status = validate(slot);
      if (slot_status.ok()) {
        resume_data = *std::move(slot);
        resumed = true;
        std::printf("main checkpoint unusable (%s); resumed from ring "
                    "slot at query %lld\n",
                    restored.message().c_str(),
                    static_cast<long long>(resume_data.queries_done));
      } else {
        WarnBadCheckpoint(options.checkpoint, restored);
      }
    } else {
      WarnBadCheckpoint(options.checkpoint, restored);
    }
  }

  AuditBaselines baselines = MakeAuditBaselines(options, loaded, initial,
                                                truth);
  CliObserver cli_obs(options, /*want_profiler=*/false, baselines,
                      controller.get(), resumed ? &resume_data : nullptr);
  if (!cli_obs.status.ok()) return FailStatus(cli_obs.status);
  Pib pib(&loaded.built.graph, initial, PibOptions{.delta = options.delta},
          cli_obs.observer.get());
  QueryProcessor qp(&loaded.built.graph, cli_obs.observer.get());
  qp.set_fault_injector(injector);
  Rng rng(options.seed);

  int64_t done = 0;
  if (resumed) {
    Status restored = pib.RestoreCheckpoint(resume_data.pib);
    if (restored.ok() && injector != nullptr) {
      restored = injector->RestoreState(resume_data.injector);
    }
    if (restored.ok()) {
      rng.RestoreState(resume_data.rng_state);
      done = resume_data.queries_done;
      if (ring != nullptr) {
        ring->RestoreCursor(resume_data.ring_cursor,
                            resume_data.ring_writes);
      }
    } else {
      WarnBadCheckpoint(options.checkpoint, restored);
      resumed = false;
      done = 0;
    }
  }

  // All live-action targets exist now: bind them and go live. Cooldown
  // state from before a kill was already rebuilt by the observer's
  // decide-only replay of the restored windows.
  if (controller != nullptr) {
    controller->BindPib(&pib);
    controller->BindInjector(injector);
    controller->BindRing(ring.get());
    controller->BindObserver(cli_obs.observer.get());
    controller->BindGraph(&loaded.built.graph);
    controller->set_live(true);
  }

  auto write_checkpoint = [&]() -> Status {
    robust::CheckpointData data;
    data.learner = "pib";
    data.seed = options.seed;
    data.queries_done = done;
    data.rng_state = rng.SaveState();
    if (injector != nullptr) {
      data.has_injector = true;
      data.injector = injector->SaveState();
    }
    data.pib = pib.GetCheckpoint();
    if (cli_obs.health != nullptr) {
      data.health.present = true;
      data.health.healthy = !cli_obs.health->AnyFiring() &&
                            cli_obs.health->drift_active() == 0;
      data.health.windows_seen = cli_obs.health->windows_seen();
      data.health.drift_active = cli_obs.health->drift_active();
      data.health.firing = cli_obs.health->FiringCount();
    }
    if (ring != nullptr) {
      data.ring_cursor = ring->cursor();
      data.ring_writes = ring->writes();
    }
    if (cli_obs.timeseries != nullptr) {
      data.has_timeseries = true;
      data.ts_window_start = cli_obs.timeseries->window_start_us();
      data.ts_next_index = cli_obs.timeseries->windows_closed();
      data.ts_evicted = cli_obs.timeseries->windows_evicted();
      for (const obs::TimeSeriesWindow& w : cli_obs.timeseries->Windows()) {
        data.ts_windows.push_back(
            obs::TimeSeriesCollector::SerializeWindowJson(w));
      }
    }
    if (cli_obs.audit_log != nullptr) {
      data.has_audit = true;
      data.audit = cli_obs.audit_log->SaveCursor();
    }
    Status written = robust::WriteCheckpoint(options.checkpoint, data);
    if (written.ok() && ring != nullptr && data.health.present &&
        data.health.healthy) {
      // Only health-stamped-good states enter the rollback ring, so the
      // rollback action can never restore a state the detectors had
      // already flagged.
      (void)ring->Write(data);
    }
    return written;
  };

  {
    // Wall time is meaningless (and nondeterministic) on the fake
    // clock; skip the histogram there so fake-clock telemetry stays
    // byte-reproducible.
    obs::ScopedTimer timer(
        cli_obs.fake_clock
            ? nullptr
            : &cli_obs.registry.GetHistogram("cli.learn_wall_us"));
    for (int64_t i = done; i < options.queries; ++i) {
      if (pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)))) {
        std::printf("  move at query %lld: %s\n",
                    static_cast<long long>(pib.contexts_processed()),
                    pib.moves().back().swap.ToString(loaded.built.graph)
                        .c_str());
      }
      done = i + 1;
      cli_obs.Tick(done);
      if (!options.checkpoint.empty() && options.checkpoint_every > 0 &&
          done % options.checkpoint_every == 0 && done < options.queries) {
        Status written = write_checkpoint();
        if (!written.ok()) return Fail(written.ToString());
      }
      if (options.halt_after > 0 && done == options.halt_after &&
          done < options.queries) {
        // Simulated crash for the kill-and-resume tests: stop without
        // writing anything, leaving the last periodic checkpoint as the
        // only recovery point.
        std::fprintf(stderr, "halting after %lld queries (--halt-after)\n",
                     static_cast<long long>(done));
        return 3;
      }
    }
  }
  if (!options.checkpoint.empty()) {
    Status written = write_checkpoint();
    if (!written.ok()) return Fail(written.ToString());
    std::printf("checkpoint written to %s\n", options.checkpoint.c_str());
  }
  PrintStrategyReport(loaded, "learned:", pib.strategy(), truth);
  Status written = MaybeWriteStrategy(options, pib.strategy());
  if (!written.ok()) return Fail(written.ToString());
  Status finished = cli_obs.Finish(options);
  if (!finished.ok()) return Fail(finished.ToString());
  return 0;
}

int CmdLearnPao(const CliOptions& options) {
  if (options.positional.size() != 3) {
    return Fail(
        "usage: stratlearn_cli learn-pao <program.dl> <query-form> "
        "<workload.txt> [--epsilon= --delta= --theorem3 --strategy-out= "
        "--seed= --metrics-out= --trace-out= --profile-out= "
        "--metrics-export= --export-every= --timeseries-out= "
        "--timeseries-every= --obs-clock=steady|fake --alerts= "
        "--health-out= --recovery= --audit-out= --audit-every= "
        "--audit-window= --fault-plan= --checkpoint= --checkpoint-every= "
        "--resume]");
  }
  if (options.resume && options.checkpoint.empty()) {
    return Fail("--resume requires --checkpoint=FILE");
  }
  Result<std::unique_ptr<Loaded>> loaded_or = Load(
      options.positional[0], options.positional[1], options.positional[2]);
  if (!loaded_or.ok()) return FailStatus(loaded_or.status());
  Loaded& loaded = **loaded_or;
  if (int rc = CheckLearnerConfig(options, &loaded.built.graph); rc != 0) {
    return rc;
  }

  DatalogOracle oracle(&loaded.built, &loaded.db, loaded.workload);
  std::vector<double> truth = oracle.TrueMarginalProbs();
  Result<std::unique_ptr<robust::FaultInjector>> injector_or =
      MakeInjector(options);
  if (!injector_or.ok()) return Fail(injector_or.status().ToString());
  robust::FaultInjector* injector = injector_or->get();

  // PAO recovery wiring is injector-scoped: quarantine acts on the
  // breakers, while the PIB-state actions (rebaseline, rollback,
  // restart_scoped) have no target here and degrade to
  // "skipped_unsupported" in the transcript.
  std::unique_ptr<robust::RecoveryController> controller;
  if (!options.recovery.empty()) {
    Result<robust::RecoveryPolicy> policy = LoadRecoveryPolicy(options.recovery);
    if (!policy.ok()) return FailStatus(policy.status());
    std::printf("recovery policy: %s (%zu rules)\n", options.recovery.c_str(),
                policy->rules.size());
    controller =
        std::make_unique<robust::RecoveryController>(*std::move(policy));
  }
  PaoOptions pao_options;
  pao_options.epsilon = options.epsilon;
  pao_options.delta = options.delta;
  if (options.theorem3) pao_options.mode = PaoOptions::Mode::kTheorem3;
  pao_options.injector = injector;
  Rng rng(options.seed);

  robust::CheckpointData resume_data;
  if (options.resume) {
    Result<robust::CheckpointData> ckpt =
        robust::LoadCheckpoint(options.checkpoint, loaded.built.graph);
    Status restored = ckpt.ok() ? Status::OK() : ckpt.status();
    if (restored.ok() && ckpt->learner != "pao") {
      restored = Status::FailedPrecondition(
          "checkpoint belongs to learner '" + ckpt->learner + "', not pao");
    }
    if (restored.ok() && ckpt->seed != options.seed) {
      restored = Status::FailedPrecondition(StrFormat(
          "checkpoint was taken with --seed=%llu, this run uses %llu",
          static_cast<unsigned long long>(ckpt->seed),
          static_cast<unsigned long long>(options.seed)));
    }
    if (restored.ok() && ckpt->has_injector != (injector != nullptr)) {
      restored = Status::FailedPrecondition(
          "checkpoint and this run disagree on --fault-plan");
    }
    if (restored.ok() && injector != nullptr) {
      restored = injector->RestoreState(ckpt->injector);
    }
    if (restored.ok()) {
      resume_data = *std::move(ckpt);
      rng.RestoreState(resume_data.rng_state);
      // Shape errors surface inside Pao::Run via RestoreCheckpoint;
      // they fail the run like any other bad sampler input.
      pao_options.resume = &resume_data.qpa;
      std::printf("resumed from %s at context %lld\n",
                  options.checkpoint.c_str(),
                  static_cast<long long>(resume_data.queries_done));
    } else {
      WarnBadCheckpoint(options.checkpoint, restored);
    }
  }
  if (!options.checkpoint.empty() && options.checkpoint_every > 0) {
    pao_options.on_context = [&options, &rng, injector](
                                 const AdaptiveQueryProcessor& qpa,
                                 int64_t contexts) {
      if (contexts % options.checkpoint_every != 0) return;
      robust::CheckpointData data;
      data.learner = "pao";
      data.seed = options.seed;
      data.queries_done = contexts;
      data.rng_state = rng.SaveState();
      if (injector != nullptr) {
        data.has_injector = true;
        data.injector = injector->SaveState();
      }
      data.qpa = qpa.GetCheckpoint();
      // Periodic checkpoints are best-effort; the final state below is
      // the one whose failure should be loud.
      (void)robust::WriteCheckpoint(options.checkpoint, data);
    };
  }

  AuditBaselines baselines = MakeAuditBaselines(
      options, loaded, Strategy::DepthFirst(loaded.built.graph), truth);
  CliObserver cli_obs(options, /*want_profiler=*/false, baselines,
                      controller.get());
  if (!cli_obs.status.ok()) return FailStatus(cli_obs.status);
  if (controller != nullptr) {
    controller->BindInjector(injector);
    controller->BindObserver(cli_obs.observer.get());
    controller->BindGraph(&loaded.built.graph);
    controller->set_live(true);
  }
  if (cli_obs.NeedsTicks() || cli_obs.fake_clock) {
    // Chain the telemetry cadence onto the per-context hook (after the
    // checkpoint writer, when one is installed). Fake-clock runs need
    // the tick even without --timeseries-out / --metrics-export so the
    // manual clock advances for trace timestamps.
    auto checkpoint_hook = pao_options.on_context;
    pao_options.on_context = [&cli_obs, checkpoint_hook](
                                 const AdaptiveQueryProcessor& qpa,
                                 int64_t contexts) {
      if (checkpoint_hook) checkpoint_hook(qpa, contexts);
      cli_obs.Tick(contexts);
    };
  }
  Result<PaoResult> result = [&] {
    obs::ScopedTimer timer(
        cli_obs.fake_clock
            ? nullptr
            : &cli_obs.registry.GetHistogram("cli.learn_wall_us"));
    return Pao::Run(loaded.built.graph, oracle, rng, pao_options,
                    cli_obs.observer.get());
  }();
  if (!result.ok()) return Fail(result.status().ToString());
  if (!options.checkpoint.empty()) {
    robust::CheckpointData data;
    data.learner = "pao";
    data.seed = options.seed;
    data.queries_done = result->contexts_used;
    data.rng_state = rng.SaveState();
    if (injector != nullptr) {
      data.has_injector = true;
      data.injector = injector->SaveState();
    }
    data.qpa.contexts = result->contexts_used;
    for (const AdaptiveQueryProcessor::Snapshot::Experiment& e :
         result->sampler.experiments) {
      data.qpa.remaining.push_back(e.remaining);
      data.qpa.counters.push_back(
          {e.attempts, e.successes, e.blocked_aims});
    }
    Status written = robust::WriteCheckpoint(options.checkpoint, data);
    if (!written.ok()) return Fail(written.ToString());
    std::printf("checkpoint written to %s\n", options.checkpoint.c_str());
  }
  std::printf("sampling used %lld contexts (upsilon %s)\n",
              static_cast<long long>(result->contexts_used),
              result->upsilon_exact ? "exact" : "approximate");
  PrintStrategyReport(loaded, "learned:", result->strategy, truth);
  Status written = MaybeWriteStrategy(options, result->strategy);
  if (!written.ok()) return Fail(written.ToString());
  Status finished = cli_obs.Finish(options);
  if (!finished.ok()) return Fail(finished.ToString());
  return 0;
}

int CmdEval(const CliOptions& options) {
  if (options.positional.size() < 3 || options.positional.size() > 4) {
    return Fail(
        "usage: stratlearn_cli eval <program.dl> <query-form> "
        "<workload.txt> [strategy-file]");
  }
  Result<std::unique_ptr<Loaded>> loaded_or = Load(
      options.positional[0], options.positional[1], options.positional[2]);
  if (!loaded_or.ok()) return FailStatus(loaded_or.status());
  Loaded& loaded = **loaded_or;

  CliObserver cli_obs(options);
  if (!cli_obs.status.ok()) return FailStatus(cli_obs.status);
  obs::Histogram& phase_us =
      cli_obs.registry.GetHistogram("cli.eval_phase_us");
  obs::Counter& evaluated =
      cli_obs.registry.GetCounter("cli.strategies_evaluated");

  DatalogOracle oracle(&loaded.built, &loaded.db, loaded.workload);
  std::vector<double> truth = oracle.TrueMarginalProbs();

  Strategy strategy = Strategy::DepthFirst(loaded.built.graph);
  const char* label = "default:";
  if (options.positional.size() == 4) {
    Result<std::string> text = ReadFile(options.positional[3]);
    if (!text.ok()) return Fail(text.status().ToString());
    Result<Strategy> parsed =
        Strategy::Deserialize(loaded.built.graph, *text);
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    strategy = *parsed;
    label = "given:";
  }
  {
    obs::ScopedTimer timer(&phase_us);
    PrintStrategyReport(loaded, label, strategy, truth);
    evaluated.Increment();
  }

  std::vector<double> smith = SmithFactCountEstimates(loaded.built, loaded.db);
  {
    obs::ScopedTimer timer(&phase_us);
    Result<UpsilonResult> smith_strategy =
        UpsilonAot(loaded.built.graph, smith);
    if (smith_strategy.ok()) {
      PrintStrategyReport(loaded, "smith:", smith_strategy->strategy, truth);
      evaluated.Increment();
    }
  }
  {
    obs::ScopedTimer timer(&phase_us);
    Result<UpsilonResult> optimal = UpsilonAot(loaded.built.graph, truth);
    if (!optimal.ok()) return Fail(optimal.status().ToString());
    PrintStrategyReport(loaded, "optimal:", optimal->strategy, truth);
    evaluated.Increment();
  }
  Status finished = cli_obs.Finish(options);
  if (!finished.ok()) return Fail(finished.ToString());
  return 0;
}

int CmdExplain(const CliOptions& options) {
  if (options.positional.size() != 3) {
    return Fail(
        "usage: stratlearn_cli explain <program.dl> <query-form> "
        "<workload.txt> [--learner=pib|pao --delta= --epsilon= --queries= "
        "--theorem3 --seed= --profile-out= --metrics-out= --trace-out=]");
  }
  if (options.learner != "pib" && options.learner != "pao") {
    return Fail("--learner must be 'pib' or 'pao'");
  }
  Result<std::unique_ptr<Loaded>> loaded_or = Load(
      options.positional[0], options.positional[1], options.positional[2]);
  if (!loaded_or.ok()) return FailStatus(loaded_or.status());
  Loaded& loaded = **loaded_or;
  if (int rc = CheckLearnerConfig(
          options,
          options.learner == "pao" ? &loaded.built.graph : nullptr);
      rc != 0) {
    return rc;
  }

  DatalogOracle oracle(&loaded.built, &loaded.db, loaded.workload);
  std::vector<double> truth = oracle.TrueMarginalProbs();
  CliObserver cli_obs(options, /*want_profiler=*/true);
  if (!cli_obs.status.ok()) return FailStatus(cli_obs.status);
  Rng rng(options.seed);

  Strategy learned;
  std::string learner_state;
  if (options.learner == "pib") {
    Strategy initial = Strategy::DepthFirst(loaded.built.graph);
    Pib pib(&loaded.built.graph, initial,
            PibOptions{.delta = options.delta}, cli_obs.observer.get());
    QueryProcessor qp(&loaded.built.graph, cli_obs.observer.get());
    for (int64_t i = 0; i < options.queries; ++i) {
      pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
    }
    learned = pib.strategy();
    learner_state = ExplainPibState(pib.Snapshot());
  } else {
    PaoOptions pao_options;
    pao_options.epsilon = options.epsilon;
    pao_options.delta = options.delta;
    if (options.theorem3) pao_options.mode = PaoOptions::Mode::kTheorem3;
    Result<PaoResult> result = Pao::Run(loaded.built.graph, oracle, rng,
                                        pao_options, cli_obs.observer.get());
    if (!result.ok()) return Fail(result.status().ToString());
    learned = result->strategy;
    learner_state = ExplainPaoState(loaded.built.graph, result->sampler);
  }

  ExplainOptions explain_options;
  explain_options.hot_share = cli_obs.profiler->options().hot_share;
  std::printf("%s", ExplainStrategyTree(loaded.built.graph, learned,
                                        cli_obs.profiler.get(),
                                        explain_options)
                        .c_str());
  std::printf("\n%s", learner_state.c_str());
  std::printf("\n%s", cli_obs.profiler->ReportText().c_str());
  std::printf("\nexpected cost %s (true p): %.4f\n",
              options.learner.c_str(),
              ExactExpectedCost(loaded.built.graph, learned, truth));
  Status written = MaybeWriteStrategy(options, learned);
  if (!written.ok()) return Fail(written.ToString());
  // The metrics summary holds wall-clock timers; skip it so explain
  // output is byte-identical across runs with the same seed.
  Status finished = cli_obs.Finish(options, /*print_summary=*/false);
  if (!finished.ok()) return Fail(finished.ToString());
  return 0;
}

int CmdBench(const CliOptions& options) {
  obs::perf::BenchRegistry registry;
  obs::perf::RegisterCanonicalWorkloads(&registry);
  if (options.list) {
    for (const obs::perf::BenchWorkload& w : registry.workloads()) {
      std::printf("%-16s %s\n", w.name.c_str(), w.description.c_str());
    }
    return 0;
  }
  if (options.repetitions < 1) return Fail("--repetitions must be >= 1");
  if (options.warmup < 0) return Fail("--warmup must be >= 0");

  std::vector<const obs::perf::BenchWorkload*> selected;
  if (options.workload == "all") {
    for (const obs::perf::BenchWorkload& w : registry.workloads()) {
      selected.push_back(&w);
    }
  } else {
    const obs::perf::BenchWorkload* w = registry.Find(options.workload);
    if (w == nullptr) {
      std::string names;
      for (const obs::perf::BenchWorkload& known : registry.workloads()) {
        names += (names.empty() ? "" : ", ") + known.name;
      }
      return Fail("unknown workload '" + options.workload +
                  "' (available: " + names + ", all)");
    }
    selected.push_back(w);
  }

  obs::perf::BenchOptions bench_options;
  bench_options.warmup = options.warmup;
  bench_options.repetitions = options.repetitions;
  bench_options.seed = options.seed;
  bench_options.fake_clock = options.fake_clock;
  bench_options.timestamp = options.timestamp;
  obs::perf::BenchRunner runner(bench_options);

  std::printf("%d warmup + %d timed repetitions, seed %llu, %s clock\n",
              options.warmup, options.repetitions,
              static_cast<unsigned long long>(options.seed),
              options.fake_clock ? "fake (work-unit)" : "steady wall");
  std::printf("  %-16s %12s %12s %12s %14s\n", "workload", "p50 us",
              "p90 us", "p99 us", "work units");
  std::printf("  %-16s %12s %12s %12s %14s\n", "----------------",
              "------------", "------------", "------------",
              "--------------");
  for (const obs::perf::BenchWorkload* workload : selected) {
    obs::perf::BenchRunResult result = runner.Run(*workload);
    std::printf("  %-16s %12s %12s %12s %14s\n", result.workload.c_str(),
                FormatDouble(result.wall_us.Percentile(50), 6).c_str(),
                FormatDouble(result.wall_us.Percentile(90), 6).c_str(),
                FormatDouble(result.wall_us.Percentile(99), 6).c_str(),
                FormatDouble(result.total_work_units, 6).c_str());
    Status written = obs::perf::WriteBenchFile(options.out_dir, result);
    if (!written.ok()) return Fail(written.ToString());
  }
  std::printf("BENCH reports written to %s/\n", options.out_dir.c_str());
  return 0;
}

int CmdVerify(const CliOptions& options) {
  if (options.positional.empty() && options.project.empty()) {
    return Fail(
        "usage: stratlearn_cli verify <files...> [--project=DIR] "
        "[--format=text|json|sarif] [--profile=FILE] "
        "[--suppressions=FILE] [--suppress-out=FILE] [--Werror]");
  }
  if (options.format != "text" && options.format != "json" &&
      options.format != "sarif") {
    return Fail("--format must be 'text', 'json' or 'sarif'");
  }
  verify::DiagnosticSink sink;
  verify::ArtifactVerifier verifier(&sink);
  if (!options.profile.empty()) {
    Result<std::string> text = ReadFile(options.profile);
    if (!text.ok()) return Fail(text.status().ToString());
    sink.set_file(options.profile);
    verifier.set_profile(verify::ParseArcProbProfile(*text, &sink));
  }
  if (!options.project.empty()) {
    Status walked =
        verify::VerifyProject(&verifier, options.project, &sink);
    if (!walked.ok()) return Fail(walked.ToString());
  }
  for (const std::string& path : options.positional) {
    Status added = verifier.AddFile(path);
    if (!added.ok()) return Fail(added.ToString());
  }
  if (!options.suppress_out.empty()) {
    // Baseline what the run found *before* any suppressions apply, so
    // regenerating a baseline does not need the old one removed first.
    std::ofstream out(options.suppress_out);
    if (!out) return Fail("cannot open '" + options.suppress_out + "'");
    out << verify::RenderSuppressionBaseline(sink);
  }
  if (!options.suppressions.empty()) {
    Result<std::string> text = ReadFile(options.suppressions);
    if (!text.ok()) return Fail(text.status().ToString());
    verify::SuppressionSet set =
        verify::ParseSuppressions(*text, options.suppressions, &sink);
    verify::ApplySuppressions(set, options.suppressions, &sink);
  }
  if (options.format == "json") {
    std::printf("%s\n", sink.RenderJson(options.werror).c_str());
  } else if (options.format == "sarif") {
    std::printf("%s\n", verify::RenderSarif(sink, options.werror).c_str());
  } else {
    std::printf("%s", sink.RenderText(options.werror).c_str());
  }
  return sink.ExitCode(options.werror);
}

int CmdHealth(const CliOptions& options) {
  static const char kUsage[] =
      "stratlearn_cli health <series.jsonl> --alerts=RULES "
      "[--format=text|json] [--health-out=FILE] [--recovery=POLICY]";
  if (options.positional.size() != 1) {
    std::fprintf(stderr, "usage: %s\n", kUsage);
    return 2;
  }
  return tools::RunOfflineHealth(options.positional[0], options.alerts,
                                 options.format, options.health_out,
                                 options.recovery, kUsage);
}

int CmdAudit(const CliOptions& options) {
  if (options.positional.size() != 1) {
    std::fprintf(stderr,
                 "usage: stratlearn_cli audit <audit.jsonl> "
                 "[--format=text|json]\n");
    return 2;
  }
  return tools::RunOfflineAudit(options.positional[0], options.format);
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: stratlearn_cli "
        "<query|dot|learn-pib|learn-pao|eval|explain|bench|health|audit|"
        "verify> ...\n");
    return 1;
  }
  std::string command = argv[1];
  CliOptions options = ParseArgs(argc, argv);
  if (command == "query") return CmdQuery(options);
  if (command == "dot") return CmdDot(options);
  if (command == "learn-pib") return CmdLearnPib(options);
  if (command == "learn-pao") return CmdLearnPao(options);
  if (command == "eval") return CmdEval(options);
  if (command == "explain") return CmdExplain(options);
  if (command == "bench") return CmdBench(options);
  if (command == "health") return CmdHealth(options);
  if (command == "audit") return CmdAudit(options);
  if (command == "verify") return CmdVerify(options);
  return Fail("unknown command '" + command + "'");
}

}  // namespace
}  // namespace stratlearn

int main(int argc, char** argv) { return stratlearn::Main(argc, argv); }
