#include "offline_health.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "obs/health/monitor.h"
#include "obs/health/series_io.h"
#include "robust/recovery/controller.h"
#include "util/status.h"
#include "verify/diagnostics.h"
#include "verify/verify.h"

namespace stratlearn::tools {

int RunOfflineHealth(const std::string& series_path,
                     const std::string& alerts_path,
                     const std::string& format,
                     const std::string& report_out,
                     const std::string& recovery_path, const char* usage) {
  if (alerts_path.empty()) {
    std::fprintf(stderr, "usage: %s\n", usage);
    return 2;
  }
  if (format != "text" && format != "json") {
    std::fprintf(stderr, "error: --format must be 'text' or 'json'\n");
    return 2;
  }
  std::ifstream rules_in(alerts_path);
  if (!rules_in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", alerts_path.c_str());
    return 2;
  }
  std::ostringstream rules_buffer;
  rules_buffer << rules_in.rdbuf();
  verify::DiagnosticSink sink;
  sink.set_file(alerts_path);
  obs::health::AlertRuleSet rules =
      verify::ParseAlertRules(rules_buffer.str(), &sink);
  // Findings always render (warnings like V-AL005 included); only
  // error-level ones block the replay.
  if (!sink.empty()) std::fprintf(stderr, "%s", sink.RenderText().c_str());
  if (sink.HasBlocking()) return 2;

  std::ifstream in(series_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", series_path.c_str());
    return 2;
  }
  obs::health::LoadedSeries series;
  Status loaded = obs::health::LoadTimeSeries(in, &series);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", series_path.c_str(),
                 loaded.ToString().c_str());
    return 2;
  }

  // The controller must outlive the monitor's hook, so it sits on the
  // stack whether or not --recovery was given.
  std::unique_ptr<robust::RecoveryController> controller;
  if (!recovery_path.empty()) {
    std::ifstream policy_in(recovery_path);
    if (!policy_in) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   recovery_path.c_str());
      return 2;
    }
    std::ostringstream policy_buffer;
    policy_buffer << policy_in.rdbuf();
    verify::DiagnosticSink policy_sink;
    policy_sink.set_file(recovery_path);
    robust::RecoveryPolicy policy =
        verify::ParseRecoveryPolicy(policy_buffer.str(), &policy_sink);
    if (!policy_sink.empty()) {
      std::fprintf(stderr, "%s", policy_sink.RenderText().c_str());
    }
    if (policy_sink.HasBlocking()) return 2;
    controller =
        std::make_unique<robust::RecoveryController>(std::move(policy));
  }

  obs::health::HealthMonitor monitor(std::move(rules),
                                     obs::health::HealthOptions{});
  // Decide-only: the offline replay records which rules would fire,
  // matching the live transcript, without any learner state to act on.
  if (controller != nullptr) {
    monitor.set_recovery_hook(controller->Hook());
  }
  for (const obs::TimeSeriesWindow& window : series.windows) {
    monitor.OnWindow(window);
  }
  std::string report =
      format == "json" ? monitor.RenderJson() : monitor.RenderText();
  std::printf("%s", report.c_str());
  if (!report_out.empty()) {
    std::ofstream out(report_out);
    out << monitor.RenderJson();
    out.flush();
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   report_out.c_str());
      return 2;
    }
  }
  return monitor.AnyFiring() ? 1 : 0;
}

}  // namespace stratlearn::tools
