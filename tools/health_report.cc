// health_report: offline statistical health monitoring over a recorded
// time series.
//
//   health_report <series.jsonl> --alerts=RULES [--format=text|json]
//                 [--out=FILE] [--recovery=POLICY]
//
// Replays a "stratlearn-timeseries-v1" file (written by stratlearn_cli
// --timeseries-out) through the drift detectors and the alert rules
// from a "stratlearn-alerts v1" file, then prints the health report —
// the same code path as `stratlearn_cli health`, packaged as a small
// standalone binary for CI jobs and cron-style monitoring scripts.
// The report is a pure function of the two input files: running it
// twice, or running it against the series of a live run, produces
// byte-identical output. --out additionally writes the
// "stratlearn-health-v1" JSON document to a file. --recovery hooks a
// decide-only RecoveryController onto the monitor, so the report's
// recovery transcript matches the live --recovery run's.
//
// Exit code: 0 healthy, 1 alerts firing, 2 usage error (bad flags,
// unreadable or malformed inputs, alert rules or recovery policy with
// verify errors).

#include <cstdio>
#include <string>
#include <vector>

#include "util/string_util.h"

#include "offline_health.h"

namespace stratlearn::tools {
namespace {

constexpr char kUsage[] =
    "health_report <series.jsonl> --alerts=RULES [--format=text|json] "
    "[--out=FILE] [--recovery=POLICY]";

int Main(int argc, char** argv) {
  std::string alerts;
  std::string format = "text";
  std::string report_out;
  std::string recovery;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--alerts=")) {
      alerts = arg.substr(9);
    } else if (StartsWith(arg, "--format=")) {
      format = arg.substr(9);
    } else if (StartsWith(arg, "--out=")) {
      report_out = arg.substr(6);
    } else if (StartsWith(arg, "--recovery=")) {
      recovery = arg.substr(11);
    } else if (StartsWith(arg, "--")) {
      std::fprintf(stderr, "error: unknown flag '%s'\nusage: %s\n",
                   arg.c_str(), kUsage);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1) {
    std::fprintf(stderr, "usage: %s\n", kUsage);
    return 2;
  }
  return RunOfflineHealth(positional[0], alerts, format, report_out,
                          recovery, kUsage);
}

}  // namespace
}  // namespace stratlearn::tools

int main(int argc, char** argv) {
  return stratlearn::tools::Main(argc, argv);
}
