#ifndef STRATLEARN_TOOLS_OFFLINE_AUDIT_H_
#define STRATLEARN_TOOLS_OFFLINE_AUDIT_H_

#include <string>

namespace stratlearn::tools {

/// Offline audit report: parses a "stratlearn-audit v1" file (see
/// obs::AuditLog) and renders a deterministic convergence report — the
/// certificate table with per-decision efficiency ratios (samples used
/// vs. the Theorem 1-3 bound m(d_i)), the per-learner delta-budget
/// ledger, the regret curve, and the run summary. `format` is "text"
/// or "json"; the JSON rendering is byte-deterministic for a given
/// input file. Backs `stratlearn_cli audit`.
///
/// Exit contract: 0 clean, 1 findings (delta ledger over budget,
/// non-conservative certificate, summary/stream disagreement), 2 usage
/// error (bad flags, unreadable or malformed audit file).
int RunOfflineAudit(const std::string& audit_path, const std::string& format);

}  // namespace stratlearn::tools

#endif  // STRATLEARN_TOOLS_OFFLINE_AUDIT_H_
