// audit_verify: independently re-derive an audit certificate stream.
//
// Usage: audit_verify <trace.jsonl> <audit.jsonl> [--recovery=policy]
//
// The audit log (obs::AuditLog) is the learner's own account of why it
// made each statistically significant decision. This tool refuses to
// take that account at face value: it replays the raw event trace the
// run recorded alongside it and re-derives every certificate from
// scratch — per-arc epoch tallies from the ArcAttempt stream, the
// sequential-schedule delta_i, the Equation 2/6 thresholds through the
// very same stats functions the learners call (so agreement is
// bit-exact, not approximate), the running delta ledger, and the regret
// and summary accounting from the QueryEnd stream.
//
// Checked per certificate:
//   - the trace's decision_certificate event matches the audit file's
//     certificate field for field (the file is a faithful transcript);
//   - the "arcs" epoch tallies equal the tallies accumulated from the
//     raw arc_attempt events since the previous certificate;
//   - delta_step follows the published schedule (6/pi^2 sequential for
//     PIB/PALO, delta/(2n) for PAO, the whole budget for PIB_1);
//   - threshold, epsilon_n and bound_samples recompute bit-exactly via
//     SequentialSumThreshold / SumThreshold / HoeffdingDeviation /
//     SampleSizeForDeviation;
//   - margin == delta_sum - threshold, and the verdict agrees with the
//     margin's sign (a commit/stop/met certificate must have crossed,
//     a reject must not have);
//   - the running per-learner sum of delta_step equals
//     delta_spent_total and never exceeds delta_budget — unless a
//     rebaseline recovery certificate appeared earlier in the stream:
//     rebaseline rewinds the sequential trial counter, so later rungs
//     re-charge delta the ledger honestly keeps counting (the summary
//     still reports budget_ok=false), and the in-stream certificate is
//     the witness that the overspend was certified, not tampered in;
//   - recovery certificates (learner "recovery") carry the count-based
//     test the controller ran: delta_sum = matched trigger transitions
//     against threshold 1, no delta charged. With --recovery=<policy>
//     the matched count is re-derived by recounting the trace's
//     drift/alert transitions at the certificate's window through the
//     same MatchesTrigger predicate the controller used.
// Plus stream-level checks: regret windows re-derived from QueryEnd
// costs, and the summary record's counters against both streams.
//
// Exit codes: 0 every certificate re-derived cleanly, 1 at least one
// mismatch, 2 usage error or unreadable/malformed input.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <sstream>

#include "obs/audit/audit_reader.h"
#include "obs/events.h"
#include "obs/trace_reader.h"
#include "obs/trace_sink.h"
#include "robust/recovery/policy.h"
#include "stats/chernoff.h"
#include "stats/sequential.h"
#include "util/string_util.h"
#include "verify/diagnostics.h"
#include "verify/verify.h"

namespace stratlearn {
namespace {

using obs::AuditCertificate;
using obs::AuditFile;
using obs::DecisionCertificateEvent;

// Re-derived regret window, mirroring AuditLog's accounting.
struct ReplayRegret {
  int64_t window_index = 0;
  int64_t queries = 0;
  int64_t queries_total = 0;
  double window_cost = 0.0;
  double total_cost = 0.0;
};

// Collects the raw streams the certificates must be provable from: the
// decision_certificate events themselves (stream copy), the arc_attempt
// tallies per certificate epoch, and the query cost accumulation.
class ReplaySink final : public obs::TraceSink {
 public:
  explicit ReplaySink(int64_t window) : window_(window) {}

  void OnArcAttempt(const obs::ArcAttemptEvent& e) override {
    obs::AuditArcTally& tally = epoch_[e.arc];
    tally.arc = static_cast<int64_t>(e.arc);
    tally.experiment = e.experiment;
    ++tally.attempts;
    if (e.unblocked) ++tally.successes;
    tally.cost += e.cost;
  }

  void OnQueryEnd(const obs::QueryEndEvent& e) override {
    ++queries_;
    ++window_queries_;
    total_cost_ += e.cost;
    window_cost_ += e.cost;
    if (window_ > 0 && window_queries_ >= window_) CloseWindow();
  }

  void OnDrift(const obs::DriftEvent& e) override {
    drift_[e.window].push_back(e);
  }

  void OnAlert(const obs::AlertEvent& e) override {
    alerts_[e.window].push_back(e);
  }

  void OnDecisionCertificate(const DecisionCertificateEvent& e) override {
    certificates_.push_back(e);
    std::vector<obs::AuditArcTally> arcs;
    arcs.reserve(epoch_.size());
    for (const auto& [arc, tally] : epoch_) arcs.push_back(tally);
    epoch_arcs_.push_back(std::move(arcs));
    epoch_.clear();
  }

  void Finish() {
    if (window_queries_ > 0) CloseWindow();
  }

  const std::vector<DecisionCertificateEvent>& certificates() const {
    return certificates_;
  }
  const std::vector<std::vector<obs::AuditArcTally>>& epoch_arcs() const {
    return epoch_arcs_;
  }
  const std::vector<ReplayRegret>& regrets() const { return regrets_; }
  int64_t queries() const { return queries_; }
  double total_cost() const { return total_cost_; }

  /// Drift/alert transitions grouped by the health window that fired
  /// them, for re-deriving recovery certificates' matched counts.
  const std::vector<obs::DriftEvent>* DriftAt(int64_t window) const {
    auto it = drift_.find(window);
    return it == drift_.end() ? nullptr : &it->second;
  }
  const std::vector<obs::AlertEvent>* AlertsAt(int64_t window) const {
    auto it = alerts_.find(window);
    return it == alerts_.end() ? nullptr : &it->second;
  }

 private:
  void CloseWindow() {
    ReplayRegret r;
    r.window_index = windows_;
    r.queries = window_queries_;
    r.queries_total = queries_;
    r.window_cost = window_cost_;
    r.total_cost = total_cost_;
    regrets_.push_back(r);
    ++windows_;
    window_queries_ = 0;
    window_cost_ = 0.0;
  }

  int64_t window_;
  std::map<uint32_t, obs::AuditArcTally> epoch_;
  std::map<int64_t, std::vector<obs::DriftEvent>> drift_;
  std::map<int64_t, std::vector<obs::AlertEvent>> alerts_;
  std::vector<DecisionCertificateEvent> certificates_;
  std::vector<std::vector<obs::AuditArcTally>> epoch_arcs_;
  std::vector<ReplayRegret> regrets_;
  int64_t queries_ = 0;
  int64_t window_queries_ = 0;
  int64_t windows_ = 0;
  double total_cost_ = 0.0;
  double window_cost_ = 0.0;
};

class Verifier {
 public:
  void Mismatch(const std::string& where, const std::string& what) {
    ++mismatches_;
    if (mismatches_ <= kMaxPrinted) {
      std::printf("MISMATCH %s: %s\n", where.c_str(), what.c_str());
    } else if (mismatches_ == kMaxPrinted + 1) {
      std::printf("... further mismatches suppressed\n");
    }
  }

  void ExpectInt(const std::string& where, const char* field, int64_t got,
                 int64_t want) {
    if (got == want) return;
    Mismatch(where, StrFormat("%s is %lld, re-derived %lld", field,
                              static_cast<long long>(got),
                              static_cast<long long>(want)));
  }

  // Doubles compare bit-for-bit: the file round-trips at 17 significant
  // digits and we recompute through the same code path, so any
  // difference at all is a real disagreement.
  void ExpectNum(const std::string& where, const char* field, double got,
                 double want) {
    if (got == want) return;
    Mismatch(where, StrFormat("%s is %s, re-derived %s", field,
                              FormatDouble(got, 17).c_str(),
                              FormatDouble(want, 17).c_str()));
  }

  void ExpectStr(const std::string& where, const char* field,
                 const std::string& got, const std::string& want) {
    if (got == want) return;
    Mismatch(where, StrFormat("%s is \"%s\", trace says \"%s\"", field,
                              got.c_str(), want.c_str()));
  }

  int64_t mismatches() const { return mismatches_; }

 private:
  static constexpr int64_t kMaxPrinted = 50;
  int64_t mismatches_ = 0;
};

// True when x is (within float round-off) a positive integer; used for
// schedule divisors the certificate does not carry explicitly (the
// neighbourhood size in PALO's stop test, the experiment count in
// PAO's delta/(2n) split).
bool IsPositiveIntegral(double x) {
  if (!(x >= 0.5)) return false;
  double nearest = std::round(x);
  return std::fabs(x - nearest) <= 1e-9 * std::max(1.0, std::fabs(nearest));
}

bool ValidDelta(double delta) { return delta > 0.0 && delta < 1.0; }

std::string Where(const AuditCertificate& cert) {
  const DecisionCertificateEvent& e = cert.event;
  return StrFormat("cert %lld (%s %s %s)",
                   static_cast<long long>(cert.seq), e.learner.c_str(),
                   e.decision.c_str(), e.verdict.c_str());
}

// The file's certificate must be a field-for-field transcript of the
// decision_certificate event the run traced.
void CheckStreamAgreement(Verifier* v, const AuditCertificate& cert,
                          const DecisionCertificateEvent& t) {
  const DecisionCertificateEvent& e = cert.event;
  std::string where = Where(cert);
  v->ExpectStr(where, "learner", e.learner, t.learner);
  v->ExpectStr(where, "decision", e.decision, t.decision);
  v->ExpectStr(where, "verdict", e.verdict, t.verdict);
  v->ExpectInt(where, "t_us", e.t_us, t.t_us);
  v->ExpectInt(where, "at_context", e.at_context, t.at_context);
  v->ExpectInt(where, "samples", e.samples, t.samples);
  v->ExpectInt(where, "trials", e.trials, t.trials);
  v->ExpectInt(where, "subject", e.subject, t.subject);
  v->ExpectNum(where, "mean", e.mean, t.mean);
  v->ExpectNum(where, "delta_sum", e.delta_sum, t.delta_sum);
  v->ExpectNum(where, "threshold", e.threshold, t.threshold);
  v->ExpectNum(where, "margin", e.margin, t.margin);
  v->ExpectNum(where, "range", e.range, t.range);
  v->ExpectNum(where, "epsilon_n", e.epsilon_n, t.epsilon_n);
  v->ExpectNum(where, "delta_step", e.delta_step, t.delta_step);
  v->ExpectNum(where, "delta_budget", e.delta_budget, t.delta_budget);
  v->ExpectNum(where, "delta_spent_total", e.delta_spent_total,
               t.delta_spent_total);
  v->ExpectInt(where, "bound_samples", e.bound_samples, t.bound_samples);
  v->ExpectNum(where, "epsilon", e.epsilon, t.epsilon);
}

// The certificate's "arcs" epoch tallies must equal the tallies
// re-accumulated from the raw arc_attempt events since the previous
// certificate.
void CheckArcTallies(Verifier* v, const AuditCertificate& cert,
                     const std::vector<obs::AuditArcTally>& replayed) {
  std::string where = Where(cert);
  if (cert.arcs.size() != replayed.size()) {
    v->Mismatch(where,
                StrFormat("certificate tallies %zu arcs, the raw stream "
                          "has %zu in this epoch",
                          cert.arcs.size(), replayed.size()));
    return;
  }
  for (size_t i = 0; i < replayed.size(); ++i) {
    const obs::AuditArcTally& a = cert.arcs[i];
    const obs::AuditArcTally& b = replayed[i];
    std::string arc_where = StrFormat("%s arc %lld", where.c_str(),
                                      static_cast<long long>(b.arc));
    v->ExpectInt(arc_where, "arc", a.arc, b.arc);
    v->ExpectInt(arc_where, "experiment", a.experiment, b.experiment);
    v->ExpectInt(arc_where, "attempts", a.attempts, b.attempts);
    v->ExpectInt(arc_where, "successes", a.successes, b.successes);
    v->ExpectNum(arc_where, "cost", a.cost, b.cost);
  }
}

// Recovery certificates record a count-based test, not a Hoeffding
// bound: delta_sum is the number of trigger transitions that matched
// the firing rule in the decision window, tested against threshold 1,
// and no delta is ever charged (recovery resets evidence, it does not
// certify a cost claim). When the policy file is supplied the matched
// count is re-derived by recounting the trace's drift/alert
// transitions at the certificate's window through the same
// MatchesTrigger predicate the controller used; without it only the
// structural identities are checkable.
void CheckRecoveryMath(Verifier* v, const AuditCertificate& cert,
                       const robust::RecoveryPolicy* policy,
                       const ReplaySink& replay) {
  const DecisionCertificateEvent& e = cert.event;
  std::string where = Where(cert);
  if (!robust::IsKnownRecoveryAction(e.verdict)) {
    v->Mismatch(where, StrFormat("\"%s\" is not a recovery action",
                                 e.verdict.c_str()));
  }
  v->ExpectInt(where, "trials", e.trials, 1);
  v->ExpectNum(where, "threshold", e.threshold, 1.0);
  v->ExpectNum(where, "delta_step", e.delta_step, 0.0);
  v->ExpectNum(where, "delta_budget", e.delta_budget, 0.0);
  v->ExpectNum(where, "delta_sum", e.delta_sum,
               static_cast<double>(e.samples));
  if (e.samples < 1) {
    v->Mismatch(where, "recovery fired on zero matched transitions");
  }
  if (policy == nullptr) return;
  const robust::RecoveryRule* rule = nullptr;
  for (const robust::RecoveryRule& r : policy->rules) {
    if (r.id == e.decision) {
      rule = &r;
      break;
    }
  }
  if (rule == nullptr) {
    v->Mismatch(where,
                StrFormat("certificate names rule \"%s\" which the "
                          "supplied policy does not define",
                          e.decision.c_str()));
    return;
  }
  if (rule->action != e.verdict) {
    v->Mismatch(where,
                StrFormat("policy rule \"%s\" maps to action \"%s\", "
                          "not \"%s\"",
                          rule->id.c_str(), rule->action.c_str(),
                          e.verdict.c_str()));
  }
  bool scoped = robust::RecoveryActionIsArcScoped(rule->action);
  int64_t matched = 0;
  if (const std::vector<obs::DriftEvent>* drift =
          replay.DriftAt(e.at_context)) {
    for (const obs::DriftEvent& t : *drift) {
      if (!robust::MatchesTrigger(*rule, t)) continue;
      if (scoped && t.arc != e.subject) continue;
      ++matched;
    }
  }
  if (!scoped) {
    if (const std::vector<obs::AlertEvent>* alerts =
            replay.AlertsAt(e.at_context)) {
      for (const obs::AlertEvent& t : *alerts) {
        if (robust::MatchesTrigger(*rule, t)) ++matched;
      }
    }
  }
  v->ExpectInt(where, "samples (matched transitions)", e.samples, matched);
}

// Re-derive the statistical content of one certificate from its counts.
// Each (learner, decision) pair recomputes delta_step, threshold,
// epsilon_n and bound_samples through the same stats functions the
// learner called, so agreement is bit-exact.
void CheckMath(Verifier* v, const AuditCertificate& cert,
               const robust::RecoveryPolicy* policy,
               const ReplaySink& replay, bool ledger_reopened) {
  const DecisionCertificateEvent& e = cert.event;
  std::string where = Where(cert);

  // Universal identities. The budget cap is waived once a rebaseline
  // recovery certificate re-opened the ledger (see file header).
  v->ExpectNum(where, "margin", e.margin, e.delta_sum - e.threshold);
  if (!ledger_reopened && !(e.delta_spent_total <= e.delta_budget)) {
    v->Mismatch(where, StrFormat("delta ledger overspent: %s > budget %s",
                                 FormatDouble(e.delta_spent_total, 17).c_str(),
                                 FormatDouble(e.delta_budget, 17).c_str()));
  }
  bool wants_crossed = e.verdict == "commit" || e.verdict == "met" ||
                       (e.verdict == "stop" && e.learner == "pib1") ||
                       e.learner == "recovery";
  bool wants_below = e.verdict == "reject" ||
                     (e.verdict == "stop" && e.learner == "palo");
  if (wants_crossed && !(e.margin >= 0.0 && e.delta_sum > 0.0)) {
    v->Mismatch(where, "verdict claims the threshold was crossed but the "
                       "margin/delta_sum disagree");
  }
  if (wants_below && e.margin > 0.0) {
    v->Mismatch(where, "verdict claims the statistic stayed below the "
                       "threshold but the margin is positive");
  }
  if (!wants_crossed && !wants_below) {
    v->Mismatch(where, "unknown learner/decision/verdict combination");
    return;
  }

  if (e.learner == "recovery") {
    CheckRecoveryMath(v, cert, policy, replay);
  } else if (e.learner == "pib" && e.decision == "climb") {
    if (e.samples < 1 || e.trials < 1 || !ValidDelta(e.delta_budget) ||
        !(e.range > 0.0)) {
      v->Mismatch(where, "counts do not support a sequential test "
                         "(samples/trials/budget/range out of range)");
      return;
    }
    double delta_step = SequentialDelta(e.trials, e.delta_budget);
    v->ExpectNum(where, "delta_step", e.delta_step, delta_step);
    v->ExpectNum(where, "threshold", e.threshold,
                 SequentialSumThreshold(e.samples, e.trials, e.delta_budget,
                                        e.range));
    v->ExpectNum(where, "epsilon_n", e.epsilon_n,
                 ValidDelta(delta_step)
                     ? HoeffdingDeviation(e.samples, delta_step, e.range)
                     : 0.0);
    v->ExpectInt(where, "bound_samples", e.bound_samples,
                 e.mean > 0.0 && ValidDelta(delta_step)
                     ? SampleSizeForDeviation(e.mean, delta_step, e.range)
                     : 0);
  } else if (e.learner == "palo" && e.decision == "climb") {
    double half = e.delta_budget / 2.0;
    if (e.samples < 1 || e.trials < 1 || !ValidDelta(half) ||
        !(e.range > 0.0)) {
      v->Mismatch(where, "counts do not support a sequential test "
                         "(samples/trials/budget/range out of range)");
      return;
    }
    double delta_step = SequentialDelta(e.trials, half);
    v->ExpectNum(where, "delta_step", e.delta_step, delta_step);
    v->ExpectNum(where, "threshold", e.threshold,
                 SequentialSumThreshold(e.samples, e.trials, half, e.range));
    v->ExpectNum(where, "epsilon_n", e.epsilon_n,
                 ValidDelta(delta_step)
                     ? HoeffdingDeviation(e.samples, delta_step, e.range)
                     : 0.0);
    v->ExpectInt(where, "bound_samples", e.bound_samples,
                 e.mean > 0.0 && ValidDelta(delta_step)
                     ? SampleSizeForDeviation(e.mean, delta_step, e.range)
                     : 0);
  } else if (e.learner == "palo" && e.decision == "stop") {
    if (e.samples < 1 || e.trials < 1 || !ValidDelta(e.delta_budget) ||
        !(e.range > 0.0)) {
      v->Mismatch(where, "counts do not support a stop test "
                         "(samples/trials/budget/range out of range)");
      return;
    }
    // The stop schedule divides delta_i by the neighbourhood size |T|,
    // which the certificate does not carry: check the divisor is a
    // positive integer instead (the CheckStop fallback uses delta/2
    // directly when the scheduled value degenerates).
    double base = SequentialDelta(e.trials, e.delta_budget / 2.0);
    if (!ValidDelta(e.delta_step) ||
        (!IsPositiveIntegral(base / e.delta_step) &&
         e.delta_step != e.delta_budget / 2.0)) {
      v->Mismatch(where,
                  StrFormat("delta_step %s is not delta_i/|T| for any "
                            "neighbourhood size",
                            FormatDouble(e.delta_step, 17).c_str()));
    }
    v->ExpectNum(where, "threshold", e.threshold, e.epsilon);
    if (ValidDelta(e.delta_step)) {
      double dev = HoeffdingDeviation(e.samples, e.delta_step, e.range);
      v->ExpectNum(where, "epsilon_n", e.epsilon_n, dev);
      // The stop statistic is the worst upper certificate: mean + dev.
      v->ExpectNum(where, "delta_sum", e.delta_sum, e.mean + dev);
      v->ExpectInt(where, "bound_samples", e.bound_samples,
                   e.epsilon > 0.0
                       ? SampleSizeForDeviation(e.epsilon, e.delta_step,
                                                e.range)
                       : 0);
    }
  } else if (e.learner == "pib1" && e.decision == "stop") {
    if (e.samples < 1 || !ValidDelta(e.delta_budget) || !(e.range > 0.0)) {
      v->Mismatch(where, "counts do not support a one-shot test "
                         "(samples/budget/range out of range)");
      return;
    }
    // The one-shot filter spends the whole budget on its single test.
    v->ExpectNum(where, "delta_step", e.delta_step, e.delta_budget);
    v->ExpectNum(where, "delta_spent_total", e.delta_spent_total,
                 e.delta_budget);
    v->ExpectNum(where, "threshold", e.threshold,
                 SumThreshold(e.samples, e.delta_budget, e.range));
    v->ExpectNum(where, "epsilon_n", e.epsilon_n,
                 HoeffdingDeviation(e.samples, e.delta_budget, e.range));
    v->ExpectInt(where, "bound_samples", e.bound_samples,
                 e.mean > 0.0
                     ? SampleSizeForDeviation(e.mean, e.delta_budget, e.range)
                     : 0);
  } else if (e.learner == "pao" && e.decision == "quota") {
    if (e.samples < 0 || !ValidDelta(e.delta_budget)) {
      v->Mismatch(where, "counts do not support a quota certificate "
                         "(samples/budget out of range)");
      return;
    }
    // delta/(2n) split: n (the experiment count) is not in the
    // certificate, so check the implied divisor is a positive integer.
    if (!(e.delta_step > 0.0) ||
        !IsPositiveIntegral(e.delta_budget / (2.0 * e.delta_step))) {
      v->Mismatch(where,
                  StrFormat("delta_step %s is not delta/(2n) for any "
                            "experiment count n",
                            FormatDouble(e.delta_step, 17).c_str()));
    }
    v->ExpectNum(where, "range", e.range, 1.0);
    v->ExpectNum(where, "delta_sum", e.delta_sum,
                 static_cast<double>(e.samples));
    v->ExpectNum(where, "threshold", e.threshold,
                 static_cast<double>(e.bound_samples));
    v->ExpectNum(where, "epsilon_n", e.epsilon_n,
                 e.samples > 0 && ValidDelta(e.delta_step)
                     ? HoeffdingDeviation(e.samples, e.delta_step, 1.0)
                     : 0.0);
  } else {
    v->Mismatch(where, "unknown learner/decision pair");
  }
}

int Verify(const std::string& trace_path, const std::string& audit_path,
           const robust::RecoveryPolicy* policy) {
  Result<AuditFile> read = obs::ReadAuditLogFile(audit_path);
  if (!read.ok()) {
    std::fprintf(stderr, "audit_verify: %s\n",
                 read.status().message().c_str());
    return 2;
  }
  const AuditFile& file = read.value();

  std::ifstream trace(trace_path);
  if (!trace.good()) {
    std::fprintf(stderr, "audit_verify: cannot open %s\n",
                 trace_path.c_str());
    return 2;
  }
  ReplaySink replay(file.header.window);
  obs::TraceReader reader(&replay);
  Status replayed = reader.ReplayStream(trace);
  if (!replayed.ok()) {
    std::fprintf(stderr, "audit_verify: %s\n",
                 replayed.message().c_str());
    return 2;
  }
  replay.Finish();

  Verifier v;

  // Certificates: stream agreement, epoch tallies, and the math.
  size_t n = std::min(file.certificates.size(),
                      replay.certificates().size());
  if (file.certificates.size() != replay.certificates().size()) {
    v.Mismatch("stream",
               StrFormat("audit file has %zu certificates, the trace "
                         "recorded %zu decision_certificate events",
                         file.certificates.size(),
                         replay.certificates().size()));
  }
  std::map<std::string, double> ledgers;
  bool ledger_reopened = false;
  for (size_t i = 0; i < file.certificates.size(); ++i) {
    const AuditCertificate& cert = file.certificates[i];
    if (i < n) {
      CheckStreamAgreement(&v, cert, replay.certificates()[i]);
      CheckArcTallies(&v, cert, replay.epoch_arcs()[i]);
    }
    CheckMath(&v, cert, policy, replay, ledger_reopened);
    if (cert.event.learner == "recovery" &&
        cert.event.verdict == "rebaseline") {
      ledger_reopened = true;
    }
    // Running ledger: the sum of emitted delta_steps, in order, must
    // reproduce delta_spent_total exactly (the learners accumulate the
    // same way) and stay within the budget.
    double& spent = ledgers[cert.event.learner];
    spent += cert.event.delta_step;
    v.ExpectNum(Where(cert), "delta_spent_total",
                cert.event.delta_spent_total, spent);
  }

  // Regret windows re-derived from the QueryEnd stream.
  size_t rn = std::min(file.regrets.size(), replay.regrets().size());
  if (file.regrets.size() != replay.regrets().size()) {
    v.Mismatch("stream",
               StrFormat("audit file has %zu regret windows, the trace "
                         "yields %zu",
                         file.regrets.size(), replay.regrets().size()));
  }
  for (size_t i = 0; i < rn; ++i) {
    const obs::AuditRegret& r = file.regrets[i];
    const ReplayRegret& t = replay.regrets()[i];
    std::string where =
        StrFormat("regret window %lld", static_cast<long long>(t.window_index));
    v.ExpectInt(where, "window_index", r.window_index, t.window_index);
    v.ExpectInt(where, "queries", r.queries, t.queries);
    v.ExpectInt(where, "queries_total", r.queries_total, t.queries_total);
    v.ExpectNum(where, "window_cost", r.window_cost, t.window_cost);
    v.ExpectNum(where, "total_cost", r.total_cost, t.total_cost);
    if (r.have_baselines != file.header.have_baselines) {
      v.Mismatch(where, "baseline fields disagree with the header");
    }
    if (r.have_baselines) {
      double incumbent = file.header.incumbent_expected_cost *
                         static_cast<double>(t.queries_total);
      double oracle = file.header.oracle_expected_cost *
                      static_cast<double>(t.queries_total);
      v.ExpectNum(where, "incumbent_total", r.incumbent_total, incumbent);
      v.ExpectNum(where, "oracle_total", r.oracle_total, oracle);
      v.ExpectNum(where, "regret_vs_incumbent", r.regret_vs_incumbent,
                  t.total_cost - incumbent);
      v.ExpectNum(where, "regret_vs_oracle", r.regret_vs_oracle,
                  t.total_cost - oracle);
    }
  }

  // Summary: counters against both streams.
  if (!file.summary.present) {
    v.Mismatch("summary", "audit file has no summary record (truncated?)");
  } else {
    const obs::AuditSummary& s = file.summary;
    int64_t commits = 0, rejects = 0, stops = 0, quotas_met = 0;
    for (const AuditCertificate& cert : file.certificates) {
      if (cert.event.verdict == "commit") ++commits;
      else if (cert.event.verdict == "reject") ++rejects;
      else if (cert.event.verdict == "stop") ++stops;
      else if (cert.event.verdict == "met") ++quotas_met;
    }
    double spent_max = 0.0;
    bool budget_ok = true;
    for (const AuditCertificate& cert : file.certificates) {
      if (cert.event.delta_spent_total > spent_max) {
        spent_max = cert.event.delta_spent_total;
      }
      if (cert.event.delta_spent_total > cert.event.delta_budget) {
        budget_ok = false;
      }
    }
    v.ExpectInt("summary", "queries", s.queries, replay.queries());
    v.ExpectInt("summary", "certificates", s.certificates,
                static_cast<int64_t>(file.certificates.size()));
    v.ExpectInt("summary", "commits", s.commits, commits);
    v.ExpectInt("summary", "rejects", s.rejects, rejects);
    v.ExpectInt("summary", "stops", s.stops, stops);
    v.ExpectInt("summary", "quotas_met", s.quotas_met, quotas_met);
    v.ExpectNum("summary", "total_cost", s.total_cost, replay.total_cost());
    v.ExpectNum("summary", "delta_spent_total", s.delta_spent_total,
                spent_max);
    if (s.budget_ok != budget_ok) {
      v.Mismatch("summary",
                 StrFormat("budget_ok=%s disagrees with the stream (%s)",
                           s.budget_ok ? "true" : "false",
                           budget_ok ? "true" : "false"));
    }
    if (!budget_ok && !ledger_reopened) {
      v.Mismatch("summary", "delta budget overspent");
    }
  }

  if (v.mismatches() > 0) {
    std::printf("audit_verify: FAIL (%lld mismatches over %zu certificates)\n",
                static_cast<long long>(v.mismatches()),
                file.certificates.size());
    return 1;
  }
  std::printf(
      "audit_verify: OK (%zu certificates, %zu regret windows, %lld "
      "queries re-derived)\n",
      file.certificates.size(), file.regrets.size(),
      static_cast<long long>(replay.queries()));
  return 0;
}

}  // namespace
}  // namespace stratlearn

int main(int argc, char** argv) {
  std::string policy_path;
  std::vector<std::string> positional;
  bool usage_error = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--recovery=", 0) == 0) {
      policy_path = arg.substr(11);
      if (policy_path.empty()) usage_error = true;
    } else if (arg.rfind("--", 0) == 0) {
      usage_error = true;
    } else {
      positional.push_back(arg);
    }
  }
  if (usage_error || positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: audit_verify <trace.jsonl> <audit.jsonl> "
                 "[--recovery=<policy>]\n"
                 "  replays the raw event trace and re-derives every "
                 "decision certificate\n"
                 "  in the audit log; with --recovery, recovery "
                 "certificates' matched-transition\n"
                 "  counts are re-derived against the policy; exit 0 "
                 "clean, 1 mismatch, 2 usage\n"
                 "  or malformed input\n");
    return 2;
  }
  stratlearn::robust::RecoveryPolicy policy;
  bool have_policy = false;
  if (!policy_path.empty()) {
    std::ifstream in(policy_path);
    if (!in.good()) {
      std::fprintf(stderr, "audit_verify: cannot open %s\n",
                   policy_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    stratlearn::verify::DiagnosticSink sink;
    sink.set_file(policy_path);
    policy = stratlearn::verify::ParseRecoveryPolicy(buffer.str(), &sink);
    if (sink.HasBlocking()) {
      std::fputs(sink.RenderText().c_str(), stderr);
      return 2;
    }
    have_policy = true;
  }
  return stratlearn::Verify(positional[0], positional[1],
                            have_policy ? &policy : nullptr);
}
