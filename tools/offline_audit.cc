#include "offline_audit.h"

#include <cstdio>
#include <map>
#include <vector>

#include "obs/audit/audit_reader.h"
#include "obs/json_writer.h"
#include "util/string_util.h"

namespace stratlearn::tools {

namespace {

/// Per-learner ledger state reconstructed from the certificate stream.
struct LedgerRow {
  double spent = 0.0;
  double budget = 0.0;
  int64_t certificates = 0;
};

/// Consistency findings over a parsed audit file. Mirrors what
/// tools/audit_verify re-derives from the raw trace, restricted to
/// what the audit file alone can witness: ledger monotonicity and
/// budget, verdict/margin agreement, summary/stream agreement.
std::vector<std::string> CheckAuditFile(const obs::AuditFile& file) {
  std::vector<std::string> findings;
  std::map<std::string, double> last_spent;
  int64_t commits = 0, rejects = 0, stops = 0, quotas_met = 0;
  // A rebaseline recovery certificate re-opens the delta ledger: the
  // rewound trial counter re-charges earlier rungs, so overspend at or
  // after it is certified by the stream itself, not a finding.
  bool ledger_reopened = false;
  for (const obs::AuditCertificate& cert : file.certificates) {
    const obs::DecisionCertificateEvent& e = cert.event;
    if (e.learner == "recovery" && e.verdict == "rebaseline") {
      ledger_reopened = true;
    }
    auto [it, first] = last_spent.try_emplace(e.learner, 0.0);
    if (!first && e.delta_spent_total < it->second) {
      findings.push_back(StrFormat(
          "line %lld: %s delta ledger went backwards (%s after %s)",
          static_cast<long long>(cert.line), e.learner.c_str(),
          FormatDouble(e.delta_spent_total, 12).c_str(),
          FormatDouble(it->second, 12).c_str()));
    }
    it->second = e.delta_spent_total;
    if (!ledger_reopened && e.delta_budget > 0.0 &&
        e.delta_spent_total > e.delta_budget) {
      findings.push_back(StrFormat(
          "line %lld: %s spent %s of a %s delta budget",
          static_cast<long long>(cert.line), e.learner.c_str(),
          FormatDouble(e.delta_spent_total, 12).c_str(),
          FormatDouble(e.delta_budget, 12).c_str()));
    }
    // Verdict/margin agreement: a commit / one-shot stop / met quota
    // certifies delta_sum >= threshold; a PALO stop certifies the worst
    // neighbour stayed *below* epsilon; a reject means the threshold
    // was not crossed.
    bool wants_crossed = e.verdict == "commit" || e.verdict == "met" ||
                         (e.verdict == "stop" && e.learner == "pib1");
    bool wants_below =
        e.verdict == "reject" || (e.verdict == "stop" && e.learner == "palo");
    if (wants_crossed && e.margin < 0.0) {
      findings.push_back(StrFormat(
          "line %lld: %s %s verdict with negative margin %s",
          static_cast<long long>(cert.line), e.learner.c_str(),
          e.verdict.c_str(), FormatDouble(e.margin, 12).c_str()));
    }
    if (wants_below && e.margin > 0.0) {
      findings.push_back(StrFormat(
          "line %lld: %s %s verdict with positive margin %s",
          static_cast<long long>(cert.line), e.learner.c_str(),
          e.verdict.c_str(), FormatDouble(e.margin, 12).c_str()));
    }
    // The margin must be the literal difference of the two fields it
    // summarises; a disagreement means one of the three was edited.
    if (e.margin != e.delta_sum - e.threshold) {
      findings.push_back(StrFormat(
          "line %lld: %s margin %s != delta_sum - threshold (%s)",
          static_cast<long long>(cert.line), e.learner.c_str(),
          FormatDouble(e.margin, 12).c_str(),
          FormatDouble(e.delta_sum - e.threshold, 12).c_str()));
    }
    if (e.verdict == "commit") ++commits;
    else if (e.verdict == "reject") ++rejects;
    else if (e.verdict == "stop") ++stops;
    else if (e.verdict == "met") ++quotas_met;
  }
  if (file.summary.present) {
    const obs::AuditSummary& s = file.summary;
    if (s.certificates != static_cast<int64_t>(file.certificates.size()) ||
        s.commits != commits || s.rejects != rejects || s.stops != stops ||
        s.quotas_met != quotas_met) {
      findings.push_back(StrFormat(
          "line %lld: summary counts disagree with the certificate stream",
          static_cast<long long>(s.line)));
    }
    if (!s.budget_ok && !ledger_reopened) {
      findings.push_back(StrFormat(
          "line %lld: summary reports the delta budget was exceeded",
          static_cast<long long>(s.line)));
    }
  }
  return findings;
}

std::map<std::string, LedgerRow> BuildLedger(const obs::AuditFile& file) {
  std::map<std::string, LedgerRow> ledger;
  for (const obs::AuditCertificate& cert : file.certificates) {
    LedgerRow& row = ledger[cert.event.learner];
    row.spent = cert.event.delta_spent_total;
    row.budget = cert.event.delta_budget;
    ++row.certificates;
  }
  return ledger;
}

/// samples / m(d_i): < 1 means the decision fired before the
/// worst-case Theorem 1-3 bound — the efficiency the paper's
/// sequential tests buy. "-" when no closed-form bound applies.
std::string Efficiency(const obs::DecisionCertificateEvent& e) {
  if (e.bound_samples <= 0) return "-";
  return FormatDouble(static_cast<double>(e.samples) /
                          static_cast<double>(e.bound_samples),
                      4);
}

void RenderText(const obs::AuditFile& file,
                const std::vector<std::string>& findings) {
  std::printf("audit report (stratlearn-audit v1)\n");
  std::printf(
      "  window %lld queries, delta budget %s, baselines %s\n\n",
      static_cast<long long>(file.header.window),
      FormatDouble(file.header.delta_budget, 6).c_str(),
      file.header.have_baselines ? "yes" : "no");

  std::printf("certificates (%zu):\n", file.certificates.size());
  std::printf("  %4s %-5s %-6s %-7s %9s %8s %8s %10s %12s %12s\n", "seq",
              "who", "what", "verdict", "context", "samples", "bound",
              "efficiency", "margin", "spent");
  for (const obs::AuditCertificate& cert : file.certificates) {
    const obs::DecisionCertificateEvent& e = cert.event;
    std::printf("  %4lld %-5s %-6s %-7s %9lld %8lld %8lld %10s %12s %12s\n",
                static_cast<long long>(cert.seq), e.learner.c_str(),
                e.decision.c_str(), e.verdict.c_str(),
                static_cast<long long>(e.at_context),
                static_cast<long long>(e.samples),
                static_cast<long long>(e.bound_samples),
                Efficiency(e).c_str(), FormatDouble(e.margin, 6).c_str(),
                FormatDouble(e.delta_spent_total, 6).c_str());
  }

  std::printf("\ndelta ledger:\n");
  for (const auto& [learner, row] : BuildLedger(file)) {
    std::printf("  %-5s %lld certificates, spent %s of %s (%s)\n",
                learner.c_str(), static_cast<long long>(row.certificates),
                FormatDouble(row.spent, 6).c_str(),
                FormatDouble(row.budget, 6).c_str(),
                row.spent <= row.budget ? "within budget" : "OVER BUDGET");
  }

  if (!file.regrets.empty()) {
    std::printf("\nregret curve (%zu windows):\n", file.regrets.size());
    std::printf("  %6s %9s %12s %12s", "window", "queries", "window_cost",
                "total_cost");
    if (file.header.have_baselines) {
      std::printf(" %14s %14s", "vs_incumbent", "vs_oracle");
    }
    std::printf("\n");
    for (const obs::AuditRegret& r : file.regrets) {
      std::printf("  %6lld %9lld %12s %12s",
                  static_cast<long long>(r.window_index),
                  static_cast<long long>(r.queries_total),
                  FormatDouble(r.window_cost, 6).c_str(),
                  FormatDouble(r.total_cost, 6).c_str());
      if (file.header.have_baselines) {
        std::printf(" %14s %14s",
                    FormatDouble(r.regret_vs_incumbent, 6).c_str(),
                    FormatDouble(r.regret_vs_oracle, 6).c_str());
      }
      std::printf("\n");
    }
  }

  if (file.summary.present) {
    const obs::AuditSummary& s = file.summary;
    std::printf(
        "\nsummary: %lld queries, %lld certificates (%lld commits, %lld "
        "rejects, %lld stops, %lld quotas met), total cost %s\n",
        static_cast<long long>(s.queries),
        static_cast<long long>(s.certificates),
        static_cast<long long>(s.commits),
        static_cast<long long>(s.rejects), static_cast<long long>(s.stops),
        static_cast<long long>(s.quotas_met),
        FormatDouble(s.total_cost, 6).c_str());
  } else {
    std::printf("\nsummary: missing (truncated run?)\n");
  }

  if (findings.empty()) {
    std::printf("audit: clean\n");
  } else {
    std::printf("audit: %zu findings\n", findings.size());
    for (const std::string& finding : findings) {
      std::printf("  %s\n", finding.c_str());
    }
  }
}

void RenderJson(const obs::AuditFile& file,
                const std::vector<std::string>& findings) {
  obs::JsonWriter w(obs::JsonWriter::kRoundTripDigits);
  w.BeginObject();
  w.Key("schema").Value("stratlearn-audit-report-v1");
  w.Key("header").BeginObject();
  w.Key("window").Value(file.header.window);
  w.Key("delta_budget").Value(file.header.delta_budget);
  w.Key("have_baselines").Value(file.header.have_baselines);
  w.Key("incumbent_expected_cost")
      .Value(file.header.incumbent_expected_cost);
  w.Key("oracle_expected_cost").Value(file.header.oracle_expected_cost);
  w.EndObject();
  w.Key("certificates").BeginArray();
  for (const obs::AuditCertificate& cert : file.certificates) {
    const obs::DecisionCertificateEvent& e = cert.event;
    w.BeginObject();
    w.Key("seq").Value(cert.seq);
    w.Key("learner").Value(e.learner);
    w.Key("decision").Value(e.decision);
    w.Key("verdict").Value(e.verdict);
    w.Key("at_context").Value(e.at_context);
    w.Key("samples").Value(e.samples);
    w.Key("bound_samples").Value(e.bound_samples);
    if (e.bound_samples > 0) {
      w.Key("efficiency")
          .Value(static_cast<double>(e.samples) /
                 static_cast<double>(e.bound_samples));
    }
    w.Key("margin").Value(e.margin);
    w.Key("delta_step").Value(e.delta_step);
    w.Key("delta_spent_total").Value(e.delta_spent_total);
    w.EndObject();
  }
  w.EndArray();
  w.Key("ledger").BeginArray();
  for (const auto& [learner, row] : BuildLedger(file)) {
    w.BeginObject();
    w.Key("learner").Value(learner);
    w.Key("certificates").Value(row.certificates);
    w.Key("spent").Value(row.spent);
    w.Key("budget").Value(row.budget);
    w.Key("within_budget").Value(row.spent <= row.budget);
    w.EndObject();
  }
  w.EndArray();
  w.Key("regret").BeginArray();
  for (const obs::AuditRegret& r : file.regrets) {
    w.BeginObject();
    w.Key("window_index").Value(r.window_index);
    w.Key("queries_total").Value(r.queries_total);
    w.Key("window_cost").Value(r.window_cost);
    w.Key("total_cost").Value(r.total_cost);
    if (r.have_baselines) {
      w.Key("regret_vs_incumbent").Value(r.regret_vs_incumbent);
      w.Key("regret_vs_oracle").Value(r.regret_vs_oracle);
    }
    w.EndObject();
  }
  w.EndArray();
  if (file.summary.present) {
    const obs::AuditSummary& s = file.summary;
    w.Key("summary").BeginObject();
    w.Key("queries").Value(s.queries);
    w.Key("certificates").Value(s.certificates);
    w.Key("commits").Value(s.commits);
    w.Key("rejects").Value(s.rejects);
    w.Key("stops").Value(s.stops);
    w.Key("quotas_met").Value(s.quotas_met);
    w.Key("total_cost").Value(s.total_cost);
    w.Key("delta_spent_total").Value(s.delta_spent_total);
    w.Key("delta_budget").Value(s.delta_budget);
    w.Key("budget_ok").Value(s.budget_ok);
    w.EndObject();
  }
  w.Key("findings").BeginArray();
  for (const std::string& finding : findings) w.Value(finding);
  w.EndArray();
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
}

}  // namespace

int RunOfflineAudit(const std::string& audit_path,
                    const std::string& format) {
  if (format != "text" && format != "json") {
    std::fprintf(stderr, "error: --format must be 'text' or 'json'\n");
    return 2;
  }
  Result<obs::AuditFile> file = obs::ReadAuditLogFile(audit_path);
  if (!file.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", audit_path.c_str(),
                 file.status().ToString().c_str());
    return 2;
  }
  std::vector<std::string> findings = CheckAuditFile(*file);
  if (format == "json") {
    RenderJson(*file, findings);
  } else {
    RenderText(*file, findings);
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace stratlearn::tools
