// bench_compare — the perf regression gate over BENCH_*.json reports.
//
// File mode:
//   bench_compare <baseline.json> <candidate.json> [options]
//       Compares one workload's candidate report against its baseline.
//
// Directory mode (the CI gate):
//   bench_compare --baseline-dir=DIR --candidate-dir=DIR [options]
//       Compares every BENCH_*.json in the baseline directory against
//       the same-named file in the candidate directory. A baseline
//       workload missing from the candidate is an error: the gate must
//       notice a workload silently dropping out of the suite. Extra
//       candidate files are listed but not gated.
//
// Options: --threshold=R (relative, default 0.25), --abs-threshold-us=A
// (default 50), --min-count=N (default 3; runs with fewer repetitions
// are reported but never gated).
//
// A regression fires when the candidate's p50 or p99 exceeds the
// baseline's by more than BOTH thresholds — the noise-aware mirror of
// `trace_report --baseline/--candidate`. Exit codes: 0 = parity or
// improvement, 1 = regression, 2 = usage / IO / malformed input.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/perf/bench_report.h"
#include "util/string_util.h"

namespace stratlearn {
namespace {

using obs::perf::BenchCompareOptions;
using obs::perf::BenchComparison;
using obs::perf::BenchReport;

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitError = 2;

struct Options {
  std::string baseline_file;
  std::string candidate_file;
  std::string baseline_dir;
  std::string candidate_dir;
  BenchCompareOptions compare;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare <baseline.json> <candidate.json> [options]\n"
      "       bench_compare --baseline-dir=DIR --candidate-dir=DIR "
      "[options]\n"
      "options: --threshold=R --abs-threshold-us=A --min-count=N\n");
  return kExitError;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return kExitError;
}

void PrintProvenance(const BenchReport& baseline,
                     const BenchReport& candidate) {
  std::fprintf(stderr, "%s: baseline %s @ %s vs candidate %s @ %s\n",
               baseline.workload.c_str(), baseline.git_sha.c_str(),
               baseline.timestamp.c_str(), candidate.git_sha.c_str(),
               candidate.timestamp.c_str());
}

/// Loads and compares one baseline/candidate file pair into
/// `comparisons`. Returns kExitError on any load/compare failure.
int ComparePair(const std::string& baseline_path,
                const std::string& candidate_path,
                const BenchCompareOptions& options,
                std::vector<BenchComparison>* comparisons) {
  Result<BenchReport> baseline =
      obs::perf::LoadBenchReport(baseline_path);
  if (!baseline.ok()) return Fail(baseline.status().ToString());
  Result<BenchReport> candidate =
      obs::perf::LoadBenchReport(candidate_path);
  if (!candidate.ok()) return Fail(candidate.status().ToString());
  PrintProvenance(*baseline, *candidate);
  Result<BenchComparison> comparison =
      CompareBenchReports(*baseline, *candidate, options);
  if (!comparison.ok()) return Fail(comparison.status().ToString());
  comparisons->push_back(*comparison);
  return kExitOk;
}

int RunDirs(const Options& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(options.baseline_dir, ec)) {
    return Fail("'" + options.baseline_dir + "' is not a directory");
  }
  if (!fs::is_directory(options.candidate_dir, ec)) {
    return Fail("'" + options.candidate_dir + "' is not a directory");
  }
  std::vector<std::string> names;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options.baseline_dir, ec)) {
    std::string name = entry.path().filename().string();
    if (StartsWith(name, "BENCH_") && name.size() > 11 &&
        name.rfind(".json") == name.size() - 5) {
      names.push_back(name);
    }
  }
  if (ec) return Fail("cannot list '" + options.baseline_dir + "'");
  if (names.empty()) {
    return Fail("no BENCH_*.json files in '" + options.baseline_dir +
                "'; the gate would be vacuous");
  }
  std::sort(names.begin(), names.end());

  std::vector<BenchComparison> comparisons;
  for (const std::string& name : names) {
    std::string candidate_path = options.candidate_dir + "/" + name;
    if (!fs::exists(candidate_path, ec)) {
      return Fail("baseline workload '" + name +
                  "' has no candidate report — did the suite drop it?");
    }
    int rc = ComparePair(options.baseline_dir + "/" + name, candidate_path,
                         options.compare, &comparisons);
    if (rc != kExitOk) return rc;
  }
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options.candidate_dir, ec)) {
    std::string name = entry.path().filename().string();
    if (StartsWith(name, "BENCH_") &&
        std::find(names.begin(), names.end(), name) == names.end()) {
      std::fprintf(stderr,
                   "note: candidate-only report %s (no baseline; run "
                   "the baseline refresh to start gating it)\n",
                   name.c_str());
    }
  }

  std::printf("%s", RenderComparisonTable(comparisons).c_str());
  bool regression = false;
  for (const BenchComparison& c : comparisons) {
    regression |= c.has_regression;
  }
  return regression ? kExitRegression : kExitOk;
}

int RunFiles(const Options& options) {
  std::vector<BenchComparison> comparisons;
  int rc = ComparePair(options.baseline_file, options.candidate_file,
                       options.compare, &comparisons);
  if (rc != kExitOk) return rc;
  std::printf("%s", RenderComparisonTable(comparisons).c_str());
  return comparisons[0].has_regression ? kExitRegression : kExitOk;
}

int Main(int argc, char** argv) {
  Options options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--baseline-dir=")) {
      options.baseline_dir = arg.substr(15);
    } else if (StartsWith(arg, "--candidate-dir=")) {
      options.candidate_dir = arg.substr(16);
    } else if (StartsWith(arg, "--threshold=")) {
      options.compare.rel_threshold = std::atof(arg.c_str() + 12);
    } else if (StartsWith(arg, "--abs-threshold-us=")) {
      options.compare.abs_threshold_us = std::atof(arg.c_str() + 19);
    } else if (StartsWith(arg, "--min-count=")) {
      options.compare.min_count = std::atoll(arg.c_str() + 12);
    } else if (StartsWith(arg, "--")) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }

  bool dir_mode =
      !options.baseline_dir.empty() || !options.candidate_dir.empty();
  if (dir_mode) {
    if (options.baseline_dir.empty() || options.candidate_dir.empty() ||
        !positional.empty()) {
      return Usage();
    }
    return RunDirs(options);
  }
  if (positional.size() != 2) return Usage();
  options.baseline_file = positional[0];
  options.candidate_file = positional[1];
  return RunFiles(options);
}

}  // namespace
}  // namespace stratlearn

int main(int argc, char** argv) { return stratlearn::Main(argc, argv); }
