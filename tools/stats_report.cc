// stats_report: render a "stratlearn-timeseries v1" file (written by
// stratlearn_cli --timeseries-out) as a deterministic report.
//
//   stats_report <timeseries.jsonl> [--format=text|json] [--last=N]
//
// --format=text (default) prints a per-window table: counter deltas and
// rates, histogram activity, and the windowed per-arc p-hat / mean-cost
// series. --format=json re-emits the series as one normalized JSON
// document (stable key order, fixed precision), convenient for diffing
// two runs or feeding a plotting script. --last=N keeps only the most
// recent N windows.
//
// Output is a pure function of the input file: same file, same bytes —
// the CI determinism check renders one fake-clock run twice and cmps.
//
// Exit codes: 0 report written, 1 cannot read file, 2 usage error
// (unknown flag, bad value) or the file is not a well-formed
// stratlearn-timeseries-v1 series. Matches health_report's contract:
// usage mistakes must never look like a clean (or merely empty) run.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_reader.h"
#include "obs/json_writer.h"
#include "util/string_util.h"

namespace stratlearn {
namespace {

using obs::JsonValue;
using obs::ReadJsonInt;
using obs::ReadJsonString;

int Usage() {
  std::fprintf(stderr,
               "usage: stats_report <timeseries.jsonl> "
               "[--format=text|json] [--last=N]\n");
  return 2;
}

int Malformed(const std::string& path, int line, const std::string& why) {
  std::fprintf(stderr, "error: %s:%d: %s\n", path.c_str(), line,
               why.c_str());
  return 2;
}

/// One decoded window line, kept as a DOM: the report re-renders the
/// fields it knows and ignores unknown keys, so schema-compatible
/// additions don't break old reports.
struct SeriesFile {
  int64_t interval_us = 0;
  int64_t capacity = 0;
  int64_t windows_closed = 0;
  int64_t windows_evicted = 0;
  std::vector<JsonValue> windows;
};

/// Number rendering for the report: fixed significant digits so text
/// and JSON output are byte-stable for identical input.
std::string Num(double v) { return FormatDouble(v, 6); }

double NumberOr(const JsonValue* v, double fallback) {
  return (v != nullptr && v->kind == JsonValue::Kind::kNumber) ? v->number
                                                               : fallback;
}

int Load(const std::string& path, SeriesFile* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return 1;
  }
  std::string line;
  int line_number = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    JsonValue value;
    if (!ParseJson(line, &value) ||
        value.kind != JsonValue::Kind::kObject) {
      return Malformed(path, line_number, "line is not a JSON object");
    }
    if (!have_header) {
      std::string schema = ReadJsonString(value, "schema");
      if (schema != "stratlearn-timeseries-v1") {
        return Malformed(path, line_number,
                         schema.empty()
                             ? "missing \"schema\" header"
                             : "unknown schema '" + schema + "'");
      }
      (void)ReadJsonInt(value, "interval_us", &out->interval_us);
      (void)ReadJsonInt(value, "capacity", &out->capacity);
      (void)ReadJsonInt(value, "windows_closed", &out->windows_closed);
      (void)ReadJsonInt(value, "windows_evicted", &out->windows_evicted);
      have_header = true;
      continue;
    }
    int64_t ignored = 0;
    if (!ReadJsonInt(value, "window", &ignored)) {
      return Malformed(path, line_number,
                       "window line lacks a numeric \"window\" index");
    }
    out->windows.push_back(std::move(value));
  }
  if (!have_header) {
    return Malformed(path, line_number, "empty file (no header line)");
  }
  return 0;
}

void RenderTextWindow(const JsonValue& w, std::string* out) {
  int64_t index = 0, start = 0, end = 0;
  (void)ReadJsonInt(w, "window", &index);
  (void)ReadJsonInt(w, "start_us", &start);
  (void)ReadJsonInt(w, "end_us", &end);
  *out += StrFormat("window %lld [%lld, %lld)\n",
                    static_cast<long long>(index),
                    static_cast<long long>(start),
                    static_cast<long long>(end));
  if (const JsonValue* counters = w.Get("counters");
      counters != nullptr && !counters->object.empty()) {
    *out += "  counters:\n";
    for (const auto& [name, c] : counters->object) {
      *out += StrFormat(
          "    %-28s total=%-10s delta=%-8s rate_per_s=%s\n", name.c_str(),
          Num(NumberOr(c.Get("total"), 0)).c_str(),
          Num(NumberOr(c.Get("delta"), 0)).c_str(),
          Num(NumberOr(c.Get("rate_per_s"), 0)).c_str());
    }
  }
  if (const JsonValue* gauges = w.Get("gauges");
      gauges != nullptr && !gauges->object.empty()) {
    *out += "  gauges:\n";
    for (const auto& [name, g] : gauges->object) {
      *out += StrFormat("    %-28s %s\n", name.c_str(),
                        Num(NumberOr(&g, 0)).c_str());
    }
  }
  if (const JsonValue* histograms = w.Get("histograms");
      histograms != nullptr && !histograms->object.empty()) {
    *out += "  histograms:\n";
    for (const auto& [name, h] : histograms->object) {
      *out += StrFormat(
          "    %-28s count+=%-8s sum+=%-12s mean=%s\n", name.c_str(),
          Num(NumberOr(h.Get("count_delta"), 0)).c_str(),
          Num(NumberOr(h.Get("sum_delta"), 0)).c_str(),
          Num(NumberOr(h.Get("mean_delta"), 0)).c_str());
    }
  }
  if (const JsonValue* arcs = w.Get("arcs");
      arcs != nullptr && !arcs->array.empty()) {
    *out += "  arcs:\n";
    for (const JsonValue& a : arcs->array) {
      *out += StrFormat(
          "    arc %-4lld attempts=%-7s unblocked=%-7s p_hat=%-10s "
          "mean_cost=%s\n",
          static_cast<long long>(NumberOr(a.Get("arc"), -1)),
          Num(NumberOr(a.Get("attempts"), 0)).c_str(),
          Num(NumberOr(a.Get("unblocked"), 0)).c_str(),
          Num(NumberOr(a.Get("p_hat"), 0)).c_str(),
          Num(NumberOr(a.Get("mean_cost"), 0)).c_str());
    }
  }
  // Health annotations (present only on windows where the monitor saw a
  // transition; written by the drift detectors / alert engine).
  if (const JsonValue* drift = w.Get("drift");
      drift != nullptr && !drift->array.empty()) {
    *out += "  drift:\n";
    for (const JsonValue& d : drift->array) {
      std::string series_id =
          ReadJsonString(d, "detector") == "rate"
              ? ReadJsonString(d, "counter")
              : StrFormat("arc %lld", static_cast<long long>(
                                          NumberOr(d.Get("arc"), -1)));
      *out += StrFormat(
          "    %-10s %-24s %-9s statistic=%-12s reference=%-12s "
          "threshold=%s\n",
          ReadJsonString(d, "detector").c_str(), series_id.c_str(),
          ReadJsonString(d, "state").c_str(),
          Num(NumberOr(d.Get("statistic"), 0)).c_str(),
          Num(NumberOr(d.Get("reference"), 0)).c_str(),
          Num(NumberOr(d.Get("threshold"), 0)).c_str());
    }
  }
  if (const JsonValue* alerts = w.Get("alerts");
      alerts != nullptr && !alerts->array.empty()) {
    *out += "  alerts:\n";
    for (const JsonValue& a : alerts->array) {
      *out += StrFormat(
          "    %-24s %-9s severity=%-8s %s value=%-12s threshold=%s\n",
          ReadJsonString(a, "rule").c_str(),
          ReadJsonString(a, "state").c_str(),
          ReadJsonString(a, "severity").c_str(),
          ReadJsonString(a, "metric").c_str(),
          Num(NumberOr(a.Get("value"), 0)).c_str(),
          Num(NumberOr(a.Get("threshold"), 0)).c_str());
    }
  }
}

// The report deliberately never echoes the input path: rendering is a
// pure function of the file's *content*, so two runs that produced
// byte-identical series render byte-identically whatever the files were
// named (the CI determinism gate compares exactly that).
std::string RenderText(const SeriesFile& series) {
  std::string out;
  out += StrFormat(
      "interval_us=%lld windows_retained=%zu windows_closed=%lld "
      "windows_evicted=%lld\n",
      static_cast<long long>(series.interval_us), series.windows.size(),
      static_cast<long long>(series.windows_closed),
      static_cast<long long>(series.windows_evicted));
  if (series.windows_evicted > 0) {
    out += StrFormat(
        "note: the %lld oldest windows were evicted from the ring and are "
        "not in this report\n",
        static_cast<long long>(series.windows_evicted));
  }
  for (const JsonValue& w : series.windows) {
    out += "\n";
    RenderTextWindow(w, &out);
  }
  return out;
}

/// Re-serializes one parsed JSON value with this tool's writer, giving
/// both runs of the determinism check identical formatting regardless
/// of who produced the file.
void EmitValue(const JsonValue& v, obs::JsonWriter* w) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      w->Null();
      break;
    case JsonValue::Kind::kBool:
      w->Value(v.boolean);
      break;
    case JsonValue::Kind::kNumber:
      w->Value(v.number);
      break;
    case JsonValue::Kind::kString:
      w->Value(std::string_view(v.string));
      break;
    case JsonValue::Kind::kArray:
      w->BeginArray();
      for (const JsonValue& e : v.array) EmitValue(e, w);
      w->EndArray();
      break;
    case JsonValue::Kind::kObject:
      w->BeginObject();
      for (const auto& [k, e] : v.object) {
        w->Key(k);
        EmitValue(e, w);
      }
      w->EndObject();
      break;
  }
}

std::string RenderJson(const SeriesFile& series) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema").Value("stratlearn-stats-report-v1");
  w.Key("interval_us").Value(series.interval_us);
  w.Key("windows_retained").Value(static_cast<int64_t>(series.windows.size()));
  w.Key("windows_closed").Value(series.windows_closed);
  w.Key("windows_evicted").Value(series.windows_evicted);
  w.Key("windows").BeginArray();
  for (const JsonValue& window : series.windows) EmitValue(window, &w);
  w.EndArray();
  w.EndObject();
  return w.Take() + "\n";
}

int Main(int argc, char** argv) {
  std::string path;
  std::string format = "text";
  int64_t last = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--format=")) {
      format = arg.substr(9);
    } else if (StartsWith(arg, "--last=")) {
      last = std::atoll(arg.c_str() + 7);
      if (last <= 0) return Usage();
    } else if (StartsWith(arg, "--")) {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();
  if (format != "text" && format != "json") return Usage();

  SeriesFile series;
  if (int rc = Load(path, &series); rc != 0) return rc;
  if (last > 0 && static_cast<size_t>(last) < series.windows.size()) {
    series.windows.erase(series.windows.begin(),
                         series.windows.end() - last);
  }
  std::string report =
      format == "json" ? RenderJson(series) : RenderText(series);
  std::fputs(report.c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace stratlearn

int main(int argc, char** argv) { return stratlearn::Main(argc, argv); }
