#ifndef STRATLEARN_TOOLS_OFFLINE_HEALTH_H_
#define STRATLEARN_TOOLS_OFFLINE_HEALTH_H_

#include <string>

namespace stratlearn::tools {

/// Offline health replay: loads "stratlearn-alerts v1" rules (through
/// the V-AL verify passes), parses a serialized
/// "stratlearn-timeseries-v1" file, and feeds every window through the
/// same HealthMonitor the live runs use. Prints the health report in
/// `format` ("text" or "json") to stdout; when `report_out` is
/// non-empty, also writes the "stratlearn-health-v1" JSON there.
/// Shared by `stratlearn_cli health` and the standalone health_report
/// binary, so the two renderings can never drift apart.
///
/// When `recovery_path` is non-empty, the "stratlearn-recovery v1"
/// policy is loaded (through the V-RC verify passes) and a decide-only
/// RecoveryController is hooked onto the monitor, so the report's
/// recovery transcript reproduces the live run's decisions byte for
/// byte — the offline half of the online/offline replay check.
///
/// Exit contract: 0 healthy, 1 alerts firing, 2 usage error (bad
/// flags, unreadable/malformed inputs, alert rules or recovery policy
/// with verify errors). `usage` is printed on a missing --alerts flag.
int RunOfflineHealth(const std::string& series_path,
                     const std::string& alerts_path,
                     const std::string& format,
                     const std::string& report_out,
                     const std::string& recovery_path, const char* usage);

}  // namespace stratlearn::tools

#endif  // STRATLEARN_TOOLS_OFFLINE_HEALTH_H_
