// Quickstart: the paper's Figure 1 knowledge base, end to end.
//
// Builds the instructor/prof/grad rule base, runs the default query
// strategy over a skewed query workload, lets PIB watch and improve it,
// and compares against the PAO + Upsilon optimum.
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "core/expected_cost.h"
#include "core/pao.h"
#include "core/pib.h"
#include "core/upsilon.h"
#include "datalog/parser.h"
#include "engine/query_processor.h"
#include "workload/datalog_oracle.h"

using namespace stratlearn;

int main() {
  // 1. A knowledge base: Datalog rules plus a database of facts.
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;
  Status loaded = parser.LoadProgram(R"(
    % Figure 1 of Greiner, PODS'92.
    instructor(X) :- prof(X).
    instructor(X) :- grad(X).
    prof(russ).
    grad(manolis).
  )",
                                     &db, &rules);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
    return 1;
  }

  // 2. Unfold the rules for the query form instructor(b) into an
  //    inference graph.
  Result<QueryForm> form = QueryForm::Parse("instructor(b)", &symbols);
  Result<BuiltGraph> built = BuildInferenceGraph(rules, *form, &symbols);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const InferenceGraph& graph = built->graph;
  std::printf("Inference graph: %zu nodes, %zu arcs, %zu experiments\n",
              graph.num_nodes(), graph.num_arcs(), graph.num_experiments());

  // 3. A query workload: mostly grad students ("minors"), so the
  //    grad-first strategy is the right one — even though the database
  //    statistics alone cannot tell.
  QueryWorkload workload;
  workload.entries.push_back({{symbols.Intern("manolis")}, 0.70});
  workload.entries.push_back({{symbols.Intern("russ")}, 0.10});
  workload.entries.push_back({{symbols.Intern("fred")}, 0.20});
  DatalogOracle oracle(&built.value(), &db, workload);
  std::vector<double> truth = oracle.TrueMarginalProbs();
  std::printf("True success probabilities: p(prof) = %.2f, p(grad) = %.2f\n",
              truth[0], truth[1]);

  // 4. Run the default (depth-first) strategy and let PIB watch.
  Strategy initial = Strategy::DepthFirst(graph);
  std::printf("Initial strategy %s costs %.3f\n",
              initial.ToString(graph).c_str(),
              ExactExpectedCost(graph, initial, truth));

  Pib pib(&graph, initial, PibOptions{.delta = 0.05, .test_every = 1});
  QueryProcessor qp(&graph);
  Rng rng(2026);
  for (int i = 0; i < 500; ++i) {
    Context context = oracle.Next(rng);
    Trace trace = qp.Execute(pib.strategy(), context);
    if (pib.Observe(trace)) {
      std::printf("  PIB move after %lld queries: -> %s\n",
                  static_cast<long long>(pib.contexts_processed()),
                  pib.strategy().ToString(graph).c_str());
    }
  }
  std::printf("PIB-learned strategy %s costs %.3f\n",
              pib.strategy().ToString(graph).c_str(),
              ExactExpectedCost(graph, pib.strategy(), truth));

  // 5. PAO: probably approximately optimal, from scratch.
  PaoOptions pao_options;
  pao_options.epsilon = 0.4;
  pao_options.delta = 0.1;
  Result<PaoResult> pao = Pao::Run(graph, oracle, rng, pao_options);
  if (!pao.ok()) {
    std::fprintf(stderr, "PAO failed: %s\n", pao.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "PAO sampled %lld contexts (quota %lld per retrieval), returned %s "
      "costing %.3f\n",
      static_cast<long long>(pao->contexts_used),
      static_cast<long long>(pao->quotas[0]),
      pao->strategy.ToString(graph).c_str(),
      ExactExpectedCost(graph, pao->strategy, truth));

  // 6. The true optimum, for reference.
  Result<UpsilonResult> opt = UpsilonAot(graph, truth);
  std::printf("Optimal strategy %s costs %.3f\n",
              opt->strategy.ToString(graph).c_str(), opt->expected_cost);
  return 0;
}
