// Section 5.2's negation-as-failure application: "pauper(X) :- not
// owns(X, Y)". Deciding pauperhood needs only a *satisficing* search for
// one possession — the searcher stops at the first owned item, so a good
// retrieval ordering (learned by PIB) pays off even inside negation.
//
// Also demonstrates the first-k-answers variant on the parent(x, Y)
// example the paper closes with.
//
// Run: ./build/examples/pauper_naf

#include <cstdio>

#include "apps/kanswers.h"
#include "apps/naf.h"
#include "core/expected_cost.h"
#include "datalog/parser.h"
#include "graph/examples.h"
#include "util/string_util.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;

int main() {
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;

  // owns/2 facts: the wealthy own many registered assets of several
  // kinds; ownership is provable through any register.
  std::string program = R"(
    owns(X, Y) :- deed(X, Y).
    owns(X, Y) :- title(X, Y).
    owns(X, Y) :- account(X, Y).
  )";
  for (int i = 0; i < 40; ++i) {
    program += StrFormat("deed(magnate, estate%d).", i);
  }
  program += "title(modest, bicycle).";
  program += "account(modest, checking).";
  Status loaded = parser.LoadProgram(program, &db, &rules);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }

  NafEvaluator naf(&db, &rules);
  for (const char* person : {"magnate", "modest", "drifter"}) {
    Result<Atom> query =
        parser.ParseAtom(StrFormat("owns(%s, X)", person));
    Result<ProofResult> proof = naf.Prove(*query, &symbols);
    Result<bool> pauper = naf.Holds(*query, &symbols);
    if (!proof.ok() || !pauper.ok()) {
      std::fprintf(stderr, "evaluation failed\n");
      return 1;
    }
    std::printf(
        "pauper(%-8s) = %-5s   (satisficing search: %lld retrievals, "
        "%lld reductions)\n",
        person, *pauper ? "true" : "false",
        static_cast<long long>(proof->retrievals),
        static_cast<long long>(proof->reductions));
  }
  std::printf(
      "\nNote the magnate's 40 estates: disproving pauperhood stopped at "
      "the first proof (answers_found = 1), not all 40.\n\n");

  // First-k-answers on the paper's closing example: parent(x, Y) has
  // exactly two answers, so the searcher can stop at k = 2 instead of
  // exhausting the graph.
  FigureTwoGraph g = MakeFigureTwo();
  std::vector<double> probs = {0.6, 0.6, 0.6, 0.6};
  Strategy theta = Strategy::DepthFirst(g.graph);
  for (int k = 1; k <= 4; ++k) {
    std::printf("first-%d-answers expected cost on G_B: %.3f\n", k,
                EnumeratedExpectedCostK(g.graph, theta, probs, k));
  }
  std::printf("(exhaustive cost would be %.1f)\n", g.graph.TotalCost());
  return 0;
}
