// Note 4's hypergraph setting as a runnable example: a knowledge base
// whose rules have conjunctive antecedents becomes an AND/OR search
// structure, and AndOrPib learns both which rule to try first (OR order)
// and in which order to check each rule's conjuncts (AND order) from
// the query stream.
//
//   eligible :- enrolled, paid, attested.    (three conjuncts)
//   eligible :- sponsored, vetted.           (two conjuncts)
//   eligible :- legacy.                      (single retrieval)
//
// Run: ./build/examples/conjunctive_rules

#include <cstdio>

#include "andor/and_or_pib.h"
#include "andor/and_or_strategy.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;

int main() {
  AndOrGraph g;
  AndOrNodeId root = g.AddRoot(AndOrKind::kOr, "eligible");

  AndOrNodeId rule1 = g.AddInternal(root, AndOrKind::kAnd, "rule1");
  g.AddLeaf(rule1, "enrolled", 1.0);
  g.AddLeaf(rule1, "paid", 2.0);
  g.AddLeaf(rule1, "attested", 0.5);

  AndOrNodeId rule2 = g.AddInternal(root, AndOrKind::kAnd, "rule2");
  g.AddLeaf(rule2, "sponsored", 1.0);
  g.AddLeaf(rule2, "vetted", 4.0);

  g.AddLeaf(root, "legacy", 1.5);

  // Workload truth: most people satisfy rule2 (sponsored & vetted);
  // rule1's 'attested' conjunct is rarely satisfied, so checking it first
  // dismisses rule1 cheaply.
  //                 enrolled paid attested sponsored vetted legacy
  std::vector<double> probs = {0.8, 0.7, 0.15, 0.75, 0.9, 0.1};

  AndOrStrategy naive = AndOrStrategy::Default(g);
  std::printf("Structure:\n%s\n", g.ToDot("eligibility").c_str());
  std::printf("Naive strategy   %s\n  expected cost %.3f\n",
              naive.ToString(g).c_str(),
              AndOrExactExpectedCost(g, naive, probs));

  AndOrPib pib(&g, naive, AndOrPibOptions{.delta = 0.02});
  IndependentOracle oracle(probs);
  Rng rng(2026);
  for (int i = 0; i < 40000; ++i) {
    if (pib.Observe(oracle.Next(rng))) {
      const AndOrPib::Move& m = pib.moves().back();
      std::printf("  move at query %lld: swap children %zu<->%zu of %s\n",
                  static_cast<long long>(m.at_context), m.child_i,
                  m.child_j, g.node(m.node).label.c_str());
    }
  }
  std::printf("Learned strategy %s\n  expected cost %.3f\n",
              pib.strategy().ToString(g).c_str(),
              AndOrExactExpectedCost(g, pib.strategy(), probs));

  Result<AndOrOptimalResult> best = AndOrBruteForceOptimal(g, probs);
  if (best.ok()) {
    std::printf("Optimal strategy %s\n  expected cost %.3f\n",
                best->strategy.ToString(g).c_str(), best->cost);
  }
  return 0;
}
