// Section 5.2's horizontally-segmented distributed database: the same
// person-facts relation is split across physical files, and a query like
// age(russ, X) should scan the files in an order that finds russ's
// segment as early as possible. Scan ordering = satisficing strategy
// selection on a flat inference graph, so PIB/PAO apply directly.
//
// Run: ./build/examples/segmented_scan

#include <cstdio>

#include "apps/segscan.h"
#include "core/expected_cost.h"
#include "core/pao.h"
#include "core/pib.h"
#include "engine/query_processor.h"
#include "workload/synthetic_oracle.h"

using namespace stratlearn;

int main() {
  // Five segments with very different scan costs (size on disk) and hit
  // rates under the live workload. The "archive" segment is huge but the
  // help desk mostly asks about current students (segment "current").
  std::vector<Segment> segments = {
      {"alumni", 6.0, 0.05},
      {"archive", 20.0, 0.02},
      {"current", 2.0, 0.55},
      {"staff", 3.0, 0.25},
      {"exchange", 1.0, 0.08},
  };
  SegmentGraph sg = MakeSegmentGraph(segments);
  std::vector<double> probs = sg.HitProbabilities();

  auto describe = [&](const char* label, const Strategy& strategy) {
    std::string names;
    for (ArcId leaf : strategy.LeafOrder(sg.graph)) {
      if (!names.empty()) names += " -> ";
      names += sg.graph.arc(leaf).label.substr(5);  // strip "scan:"
    }
    std::printf("%-22s %-55s cost %.3f\n", label, names.c_str(),
                ExactExpectedCost(sg.graph, strategy, probs));
  };

  // Naive file order.
  Strategy naive = Strategy::DepthFirst(sg.graph);
  describe("File order:", naive);

  // The classical optimum: descending p/c ratio.
  std::vector<ArcId> leaves;
  for (size_t i : OptimalScanOrder(segments)) {
    leaves.push_back(sg.graph.SuccessArcs()[i]);
  }
  describe("Ratio-optimal:", Strategy::FromLeafOrder(sg.graph, leaves));

  // PIB learns it online from query traces, without knowing the
  // probabilities.
  Pib pib(&sg.graph, naive, PibOptions{.delta = 0.05});
  IndependentOracle oracle(probs);
  QueryProcessor qp(&sg.graph);
  Rng rng(99);
  for (int i = 0; i < 30000; ++i) {
    pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
  }
  std::printf("(PIB made %zu moves over %lld queries)\n",
              pib.moves().size(),
              static_cast<long long>(pib.contexts_processed()));
  describe("PIB-learned:", pib.strategy());

  // PAO gets there with an a-priori sample bound.
  PaoOptions options;
  options.epsilon = 2.0;
  options.delta = 0.1;
  Result<PaoResult> pao = Pao::Run(sg.graph, oracle, rng, options);
  if (!pao.ok()) {
    std::fprintf(stderr, "PAO failed: %s\n", pao.status().ToString().c_str());
    return 1;
  }
  std::printf("(PAO used %lld sampling contexts)\n",
              static_cast<long long>(pao->contexts_used));
  describe("PAO-learned:", pao->strategy);
  return 0;
}
