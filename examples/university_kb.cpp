// A larger university knowledge base: multi-level rules, conjunctive
// bodies, a guarded rule, and a realistic query mix. Shows the whole
// learning pipeline on a graph deeper than the paper's figures, and the
// Smith fact-count baseline being led astray by the database shape.
//
// Run: ./build/examples/university_kb

#include <cstdio>

#include "core/expected_cost.h"
#include "core/pao.h"
#include "core/pib.h"
#include "core/smith.h"
#include "core/upsilon.h"
#include "datalog/parser.h"
#include "engine/query_processor.h"
#include "util/string_util.h"
#include "workload/datalog_oracle.h"

using namespace stratlearn;

int main() {
  SymbolTable symbols;
  Parser parser(&symbols);
  Database db;
  RuleBase rules;

  // Rules: who counts as "teaching_staff"? Several derivation routes of
  // different depths, one requiring a conjunction, one guarded.
  Status loaded = parser.LoadProgram(R"(
    teaching_staff(X) :- faculty(X).
    teaching_staff(X) :- ta(X).
    faculty(X) :- tenured(X).
    faculty(X) :- adjunct(X), approved(X).   % conjunctive chain
    ta(X) :- grad(X), assigned(X).           % conjunctive chain
    ta(visiting_scholar) :- sponsor(visiting_scholar, Y).  % guarded
  )",
                                     &db, &rules);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
    return 1;
  }

  // Database: the department has many tenured faculty on record but the
  // query stream is dominated by TAs (the term just started).
  Rng rng(7);
  std::vector<std::string> tas, tenured;
  for (int i = 0; i < 60; ++i) {
    std::string name = StrFormat("ta%d", i);
    db.Insert(symbols.Intern("grad"), {symbols.Intern(name)});
    db.Insert(symbols.Intern("assigned"), {symbols.Intern(name)});
    tas.push_back(name);
  }
  for (int i = 0; i < 400; ++i) {
    std::string name = StrFormat("prof%d", i);
    db.Insert(symbols.Intern("tenured"), {symbols.Intern(name)});
    tenured.push_back(name);
  }
  for (int i = 0; i < 30; ++i) {
    std::string name = StrFormat("adj%d", i);
    db.Insert(symbols.Intern("adjunct"), {symbols.Intern(name)});
    if (i % 2 == 0) db.Insert(symbols.Intern("approved"), {symbols.Intern(name)});
  }
  db.Insert(symbols.Intern("sponsor"),
            {symbols.Intern("visiting_scholar"), symbols.Intern("daimler")});

  Result<QueryForm> form = QueryForm::Parse("teaching_staff(b)", &symbols);
  Result<BuiltGraph> built = BuildInferenceGraph(rules, *form, &symbols);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  const InferenceGraph& graph = built->graph;
  std::printf("Graph: %zu arcs, %zu experiments (%zu guarded)\n",
              graph.num_arcs(), graph.num_experiments(),
              built->guards.size());
  std::printf("%s\n", graph.ToDot("university").c_str());

  // Query mix: 80% TA lookups, 15% tenured, 5% unknown people.
  QueryWorkload workload;
  for (int i = 0; i < 20; ++i) {
    workload.entries.push_back({{symbols.Intern(tas[i])}, 4.0});
  }
  for (int i = 0; i < 15; ++i) {
    workload.entries.push_back({{symbols.Intern(tenured[i])}, 1.0});
  }
  workload.entries.push_back({{symbols.Intern("stranger")}, 5.0});
  DatalogOracle oracle(&built.value(), &db, workload);
  std::vector<double> truth = oracle.TrueMarginalProbs();

  Strategy initial = Strategy::DepthFirst(graph);
  double initial_cost = ExactExpectedCost(graph, initial, truth);
  std::printf("Initial (rule-order) strategy cost: %.3f\n", initial_cost);

  // Smith baseline: misled by the 400 tenured facts.
  std::vector<double> smith_est = SmithFactCountEstimates(*built, db);
  Result<UpsilonResult> smith = UpsilonAot(graph, smith_est);
  if (smith.ok()) {
    std::printf("Smith fact-count strategy cost:     %.3f\n",
                ExactExpectedCost(graph, smith->strategy, truth));
  }

  // PIB, watching real queries.
  Pib pib(&graph, initial, PibOptions{.delta = 0.05});
  QueryProcessor qp(&graph);
  for (int i = 0; i < 20000; ++i) {
    pib.Observe(qp.Execute(pib.strategy(), oracle.Next(rng)));
  }
  std::printf("PIB strategy cost after %lld queries (%zu moves): %.3f\n",
              static_cast<long long>(pib.contexts_processed()),
              pib.moves().size(),
              ExactExpectedCost(graph, pib.strategy(), truth));

  // PAO with Theorem 3 sampling (the guarded arc is rarely reachable).
  PaoOptions pao_options;
  pao_options.epsilon = 0.10 * graph.TotalCost();
  pao_options.delta = 0.1;
  pao_options.mode = PaoOptions::Mode::kTheorem3;
  Result<PaoResult> pao = Pao::Run(graph, oracle, rng, pao_options);
  if (pao.ok()) {
    std::printf("PAO strategy cost (%lld contexts, exact=%d): %.3f\n",
                static_cast<long long>(pao->contexts_used),
                pao->upsilon_exact ? 1 : 0,
                ExactExpectedCost(graph, pao->strategy, truth));
  } else {
    std::printf("PAO: %s\n", pao.status().ToString().c_str());
  }

  Result<UpsilonResult> opt = UpsilonAot(graph, truth);
  if (opt.ok()) {
    std::printf("True optimum cost:                  %.3f\n",
                ExactExpectedCost(graph, opt->strategy, truth));
  }
  return 0;
}
