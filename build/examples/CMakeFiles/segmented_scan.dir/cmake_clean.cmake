file(REMOVE_RECURSE
  "CMakeFiles/segmented_scan.dir/segmented_scan.cpp.o"
  "CMakeFiles/segmented_scan.dir/segmented_scan.cpp.o.d"
  "segmented_scan"
  "segmented_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segmented_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
