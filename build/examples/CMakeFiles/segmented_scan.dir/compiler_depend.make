# Empty compiler generated dependencies file for segmented_scan.
# This may be replaced when dependencies are built.
