# Empty compiler generated dependencies file for pauper_naf.
# This may be replaced when dependencies are built.
