file(REMOVE_RECURSE
  "CMakeFiles/pauper_naf.dir/pauper_naf.cpp.o"
  "CMakeFiles/pauper_naf.dir/pauper_naf.cpp.o.d"
  "pauper_naf"
  "pauper_naf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pauper_naf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
