# Empty compiler generated dependencies file for university_kb.
# This may be replaced when dependencies are built.
