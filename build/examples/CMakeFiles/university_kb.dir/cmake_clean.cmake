file(REMOVE_RECURSE
  "CMakeFiles/university_kb.dir/university_kb.cpp.o"
  "CMakeFiles/university_kb.dir/university_kb.cpp.o.d"
  "university_kb"
  "university_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
