# Empty compiler generated dependencies file for conjunctive_rules.
# This may be replaced when dependencies are built.
