file(REMOVE_RECURSE
  "CMakeFiles/conjunctive_rules.dir/conjunctive_rules.cpp.o"
  "CMakeFiles/conjunctive_rules.dir/conjunctive_rules.cpp.o.d"
  "conjunctive_rules"
  "conjunctive_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conjunctive_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
