file(REMOVE_RECURSE
  "CMakeFiles/exp_pib_gb.dir/exp_pib_gb.cc.o"
  "CMakeFiles/exp_pib_gb.dir/exp_pib_gb.cc.o.d"
  "CMakeFiles/exp_pib_gb.dir/harness.cc.o"
  "CMakeFiles/exp_pib_gb.dir/harness.cc.o.d"
  "exp_pib_gb"
  "exp_pib_gb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_pib_gb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
