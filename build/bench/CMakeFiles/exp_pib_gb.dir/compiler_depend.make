# Empty compiler generated dependencies file for exp_pib_gb.
# This may be replaced when dependencies are built.
