# Empty compiler generated dependencies file for exp_naf_kanswers.
# This may be replaced when dependencies are built.
