file(REMOVE_RECURSE
  "CMakeFiles/exp_naf_kanswers.dir/exp_naf_kanswers.cc.o"
  "CMakeFiles/exp_naf_kanswers.dir/exp_naf_kanswers.cc.o.d"
  "CMakeFiles/exp_naf_kanswers.dir/harness.cc.o"
  "CMakeFiles/exp_naf_kanswers.dir/harness.cc.o.d"
  "exp_naf_kanswers"
  "exp_naf_kanswers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_naf_kanswers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
