# Empty compiler generated dependencies file for exp_upsilon.
# This may be replaced when dependencies are built.
