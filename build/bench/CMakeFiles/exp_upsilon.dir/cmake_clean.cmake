file(REMOVE_RECURSE
  "CMakeFiles/exp_upsilon.dir/exp_upsilon.cc.o"
  "CMakeFiles/exp_upsilon.dir/exp_upsilon.cc.o.d"
  "CMakeFiles/exp_upsilon.dir/harness.cc.o"
  "CMakeFiles/exp_upsilon.dir/harness.cc.o.d"
  "exp_upsilon"
  "exp_upsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_upsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
