file(REMOVE_RECURSE
  "CMakeFiles/bm_core.dir/bm_core.cc.o"
  "CMakeFiles/bm_core.dir/bm_core.cc.o.d"
  "bm_core"
  "bm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
