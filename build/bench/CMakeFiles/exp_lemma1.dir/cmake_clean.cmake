file(REMOVE_RECURSE
  "CMakeFiles/exp_lemma1.dir/exp_lemma1.cc.o"
  "CMakeFiles/exp_lemma1.dir/exp_lemma1.cc.o.d"
  "CMakeFiles/exp_lemma1.dir/harness.cc.o"
  "CMakeFiles/exp_lemma1.dir/harness.cc.o.d"
  "exp_lemma1"
  "exp_lemma1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_lemma1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
