# Empty compiler generated dependencies file for exp_lemma1.
# This may be replaced when dependencies are built.
