file(REMOVE_RECURSE
  "CMakeFiles/exp_fig1_costs.dir/exp_fig1_costs.cc.o"
  "CMakeFiles/exp_fig1_costs.dir/exp_fig1_costs.cc.o.d"
  "CMakeFiles/exp_fig1_costs.dir/harness.cc.o"
  "CMakeFiles/exp_fig1_costs.dir/harness.cc.o.d"
  "exp_fig1_costs"
  "exp_fig1_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig1_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
