# Empty compiler generated dependencies file for exp_andor.
# This may be replaced when dependencies are built.
