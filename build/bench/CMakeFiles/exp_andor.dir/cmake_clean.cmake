file(REMOVE_RECURSE
  "CMakeFiles/exp_andor.dir/exp_andor.cc.o"
  "CMakeFiles/exp_andor.dir/exp_andor.cc.o.d"
  "CMakeFiles/exp_andor.dir/harness.cc.o"
  "CMakeFiles/exp_andor.dir/harness.cc.o.d"
  "exp_andor"
  "exp_andor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_andor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
