# Empty dependencies file for exp_pib1.
# This may be replaced when dependencies are built.
