file(REMOVE_RECURSE
  "CMakeFiles/exp_pib1.dir/exp_pib1.cc.o"
  "CMakeFiles/exp_pib1.dir/exp_pib1.cc.o.d"
  "CMakeFiles/exp_pib1.dir/harness.cc.o"
  "CMakeFiles/exp_pib1.dir/harness.cc.o.d"
  "exp_pib1"
  "exp_pib1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_pib1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
