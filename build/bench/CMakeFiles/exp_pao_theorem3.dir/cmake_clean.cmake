file(REMOVE_RECURSE
  "CMakeFiles/exp_pao_theorem3.dir/exp_pao_theorem3.cc.o"
  "CMakeFiles/exp_pao_theorem3.dir/exp_pao_theorem3.cc.o.d"
  "CMakeFiles/exp_pao_theorem3.dir/harness.cc.o"
  "CMakeFiles/exp_pao_theorem3.dir/harness.cc.o.d"
  "exp_pao_theorem3"
  "exp_pao_theorem3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_pao_theorem3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
