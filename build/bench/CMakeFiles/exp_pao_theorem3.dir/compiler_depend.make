# Empty compiler generated dependencies file for exp_pao_theorem3.
# This may be replaced when dependencies are built.
