# Empty dependencies file for exp_segscan.
# This may be replaced when dependencies are built.
