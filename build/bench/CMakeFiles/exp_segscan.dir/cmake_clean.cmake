file(REMOVE_RECURSE
  "CMakeFiles/exp_segscan.dir/exp_segscan.cc.o"
  "CMakeFiles/exp_segscan.dir/exp_segscan.cc.o.d"
  "CMakeFiles/exp_segscan.dir/harness.cc.o"
  "CMakeFiles/exp_segscan.dir/harness.cc.o.d"
  "exp_segscan"
  "exp_segscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_segscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
