file(REMOVE_RECURSE
  "CMakeFiles/bm_datalog.dir/bm_datalog.cc.o"
  "CMakeFiles/bm_datalog.dir/bm_datalog.cc.o.d"
  "bm_datalog"
  "bm_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
