# Empty compiler generated dependencies file for bm_datalog.
# This may be replaced when dependencies are built.
