file(REMOVE_RECURSE
  "CMakeFiles/exp_theorem1.dir/exp_theorem1.cc.o"
  "CMakeFiles/exp_theorem1.dir/exp_theorem1.cc.o.d"
  "CMakeFiles/exp_theorem1.dir/harness.cc.o"
  "CMakeFiles/exp_theorem1.dir/harness.cc.o.d"
  "exp_theorem1"
  "exp_theorem1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_theorem1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
