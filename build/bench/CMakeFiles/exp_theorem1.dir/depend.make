# Empty dependencies file for exp_theorem1.
# This may be replaced when dependencies are built.
