# Empty dependencies file for exp_ablation.
# This may be replaced when dependencies are built.
