# Empty compiler generated dependencies file for exp_smith_pitfall.
# This may be replaced when dependencies are built.
