file(REMOVE_RECURSE
  "CMakeFiles/exp_smith_pitfall.dir/exp_smith_pitfall.cc.o"
  "CMakeFiles/exp_smith_pitfall.dir/exp_smith_pitfall.cc.o.d"
  "CMakeFiles/exp_smith_pitfall.dir/harness.cc.o"
  "CMakeFiles/exp_smith_pitfall.dir/harness.cc.o.d"
  "exp_smith_pitfall"
  "exp_smith_pitfall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_smith_pitfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
