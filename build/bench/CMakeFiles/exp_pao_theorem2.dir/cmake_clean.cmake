file(REMOVE_RECURSE
  "CMakeFiles/exp_pao_theorem2.dir/exp_pao_theorem2.cc.o"
  "CMakeFiles/exp_pao_theorem2.dir/exp_pao_theorem2.cc.o.d"
  "CMakeFiles/exp_pao_theorem2.dir/harness.cc.o"
  "CMakeFiles/exp_pao_theorem2.dir/harness.cc.o.d"
  "exp_pao_theorem2"
  "exp_pao_theorem2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_pao_theorem2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
