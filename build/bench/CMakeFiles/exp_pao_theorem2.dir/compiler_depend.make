# Empty compiler generated dependencies file for exp_pao_theorem2.
# This may be replaced when dependencies are built.
