file(REMOVE_RECURSE
  "CMakeFiles/exp_dependence.dir/exp_dependence.cc.o"
  "CMakeFiles/exp_dependence.dir/exp_dependence.cc.o.d"
  "CMakeFiles/exp_dependence.dir/harness.cc.o"
  "CMakeFiles/exp_dependence.dir/harness.cc.o.d"
  "exp_dependence"
  "exp_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
