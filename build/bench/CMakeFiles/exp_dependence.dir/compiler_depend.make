# Empty compiler generated dependencies file for exp_dependence.
# This may be replaced when dependencies are built.
