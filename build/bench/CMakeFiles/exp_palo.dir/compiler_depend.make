# Empty compiler generated dependencies file for exp_palo.
# This may be replaced when dependencies are built.
