file(REMOVE_RECURSE
  "CMakeFiles/exp_palo.dir/exp_palo.cc.o"
  "CMakeFiles/exp_palo.dir/exp_palo.cc.o.d"
  "CMakeFiles/exp_palo.dir/harness.cc.o"
  "CMakeFiles/exp_palo.dir/harness.cc.o.d"
  "exp_palo"
  "exp_palo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_palo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
