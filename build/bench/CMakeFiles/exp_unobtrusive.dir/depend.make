# Empty dependencies file for exp_unobtrusive.
# This may be replaced when dependencies are built.
