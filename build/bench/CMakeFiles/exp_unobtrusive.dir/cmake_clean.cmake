file(REMOVE_RECURSE
  "CMakeFiles/exp_unobtrusive.dir/exp_unobtrusive.cc.o"
  "CMakeFiles/exp_unobtrusive.dir/exp_unobtrusive.cc.o.d"
  "CMakeFiles/exp_unobtrusive.dir/harness.cc.o"
  "CMakeFiles/exp_unobtrusive.dir/harness.cc.o.d"
  "exp_unobtrusive"
  "exp_unobtrusive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_unobtrusive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
