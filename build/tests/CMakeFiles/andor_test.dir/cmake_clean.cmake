file(REMOVE_RECURSE
  "CMakeFiles/andor_test.dir/andor_test.cc.o"
  "CMakeFiles/andor_test.dir/andor_test.cc.o.d"
  "andor_test"
  "andor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/andor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
