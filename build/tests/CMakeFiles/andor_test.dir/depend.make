# Empty dependencies file for andor_test.
# This may be replaced when dependencies are built.
