# Empty compiler generated dependencies file for transformations_test.
# This may be replaced when dependencies are built.
