# Empty compiler generated dependencies file for pib1_test.
# This may be replaced when dependencies are built.
