file(REMOVE_RECURSE
  "CMakeFiles/pib1_test.dir/pib1_test.cc.o"
  "CMakeFiles/pib1_test.dir/pib1_test.cc.o.d"
  "pib1_test"
  "pib1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pib1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
