file(REMOVE_RECURSE
  "CMakeFiles/adaptive_qp_test.dir/adaptive_qp_test.cc.o"
  "CMakeFiles/adaptive_qp_test.dir/adaptive_qp_test.cc.o.d"
  "adaptive_qp_test"
  "adaptive_qp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_qp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
