# Empty dependencies file for adaptive_qp_test.
# This may be replaced when dependencies are built.
