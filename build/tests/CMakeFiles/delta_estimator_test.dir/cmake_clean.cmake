file(REMOVE_RECURSE
  "CMakeFiles/delta_estimator_test.dir/delta_estimator_test.cc.o"
  "CMakeFiles/delta_estimator_test.dir/delta_estimator_test.cc.o.d"
  "delta_estimator_test"
  "delta_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
