# Empty compiler generated dependencies file for delta_estimator_test.
# This may be replaced when dependencies are built.
