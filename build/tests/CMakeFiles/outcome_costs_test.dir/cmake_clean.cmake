file(REMOVE_RECURSE
  "CMakeFiles/outcome_costs_test.dir/outcome_costs_test.cc.o"
  "CMakeFiles/outcome_costs_test.dir/outcome_costs_test.cc.o.d"
  "outcome_costs_test"
  "outcome_costs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outcome_costs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
