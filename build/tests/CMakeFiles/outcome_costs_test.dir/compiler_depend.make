# Empty compiler generated dependencies file for outcome_costs_test.
# This may be replaced when dependencies are built.
