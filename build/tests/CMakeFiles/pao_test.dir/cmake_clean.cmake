file(REMOVE_RECURSE
  "CMakeFiles/pao_test.dir/pao_test.cc.o"
  "CMakeFiles/pao_test.dir/pao_test.cc.o.d"
  "pao_test"
  "pao_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pao_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
