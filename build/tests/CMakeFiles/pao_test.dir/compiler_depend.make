# Empty compiler generated dependencies file for pao_test.
# This may be replaced when dependencies are built.
