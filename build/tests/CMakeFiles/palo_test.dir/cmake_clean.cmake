file(REMOVE_RECURSE
  "CMakeFiles/palo_test.dir/palo_test.cc.o"
  "CMakeFiles/palo_test.dir/palo_test.cc.o.d"
  "palo_test"
  "palo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
