# Empty dependencies file for palo_test.
# This may be replaced when dependencies are built.
