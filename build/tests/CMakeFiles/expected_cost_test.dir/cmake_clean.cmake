file(REMOVE_RECURSE
  "CMakeFiles/expected_cost_test.dir/expected_cost_test.cc.o"
  "CMakeFiles/expected_cost_test.dir/expected_cost_test.cc.o.d"
  "expected_cost_test"
  "expected_cost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expected_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
