# Empty compiler generated dependencies file for expected_cost_test.
# This may be replaced when dependencies are built.
