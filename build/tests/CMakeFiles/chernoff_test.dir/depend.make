# Empty dependencies file for chernoff_test.
# This may be replaced when dependencies are built.
