file(REMOVE_RECURSE
  "CMakeFiles/chernoff_test.dir/chernoff_test.cc.o"
  "CMakeFiles/chernoff_test.dir/chernoff_test.cc.o.d"
  "chernoff_test"
  "chernoff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chernoff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
