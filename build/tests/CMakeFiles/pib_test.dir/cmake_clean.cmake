file(REMOVE_RECURSE
  "CMakeFiles/pib_test.dir/pib_test.cc.o"
  "CMakeFiles/pib_test.dir/pib_test.cc.o.d"
  "pib_test"
  "pib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
