# Empty dependencies file for pib_test.
# This may be replaced when dependencies are built.
