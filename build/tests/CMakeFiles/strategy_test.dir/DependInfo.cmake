
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/strategy_test.cc" "tests/CMakeFiles/strategy_test.dir/strategy_test.cc.o" "gcc" "tests/CMakeFiles/strategy_test.dir/strategy_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/stratlearn_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/andor/CMakeFiles/stratlearn_andor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stratlearn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/stratlearn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/stratlearn_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/stratlearn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/stratlearn_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stratlearn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stratlearn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
