# Empty dependencies file for upsilon_test.
# This may be replaced when dependencies are built.
