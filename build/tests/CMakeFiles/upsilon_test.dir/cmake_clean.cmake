file(REMOVE_RECURSE
  "CMakeFiles/upsilon_test.dir/upsilon_test.cc.o"
  "CMakeFiles/upsilon_test.dir/upsilon_test.cc.o.d"
  "upsilon_test"
  "upsilon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upsilon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
