# Empty dependencies file for inference_graph_test.
# This may be replaced when dependencies are built.
