file(REMOVE_RECURSE
  "CMakeFiles/inference_graph_test.dir/inference_graph_test.cc.o"
  "CMakeFiles/inference_graph_test.dir/inference_graph_test.cc.o.d"
  "inference_graph_test"
  "inference_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
