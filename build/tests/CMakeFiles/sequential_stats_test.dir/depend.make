# Empty dependencies file for sequential_stats_test.
# This may be replaced when dependencies are built.
