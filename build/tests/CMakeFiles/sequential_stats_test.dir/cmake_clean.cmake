file(REMOVE_RECURSE
  "CMakeFiles/sequential_stats_test.dir/sequential_stats_test.cc.o"
  "CMakeFiles/sequential_stats_test.dir/sequential_stats_test.cc.o.d"
  "sequential_stats_test"
  "sequential_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
