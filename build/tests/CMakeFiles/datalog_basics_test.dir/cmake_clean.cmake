file(REMOVE_RECURSE
  "CMakeFiles/datalog_basics_test.dir/datalog_basics_test.cc.o"
  "CMakeFiles/datalog_basics_test.dir/datalog_basics_test.cc.o.d"
  "datalog_basics_test"
  "datalog_basics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_basics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
