file(REMOVE_RECURSE
  "libstratlearn_workload.a"
)
