file(REMOVE_RECURSE
  "CMakeFiles/stratlearn_workload.dir/datalog_oracle.cc.o"
  "CMakeFiles/stratlearn_workload.dir/datalog_oracle.cc.o.d"
  "CMakeFiles/stratlearn_workload.dir/random_tree.cc.o"
  "CMakeFiles/stratlearn_workload.dir/random_tree.cc.o.d"
  "CMakeFiles/stratlearn_workload.dir/synthetic_oracle.cc.o"
  "CMakeFiles/stratlearn_workload.dir/synthetic_oracle.cc.o.d"
  "libstratlearn_workload.a"
  "libstratlearn_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stratlearn_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
