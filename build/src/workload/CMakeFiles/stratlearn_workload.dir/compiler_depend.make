# Empty compiler generated dependencies file for stratlearn_workload.
# This may be replaced when dependencies are built.
