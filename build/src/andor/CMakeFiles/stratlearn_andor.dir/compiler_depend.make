# Empty compiler generated dependencies file for stratlearn_andor.
# This may be replaced when dependencies are built.
