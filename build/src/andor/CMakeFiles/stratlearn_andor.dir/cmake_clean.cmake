file(REMOVE_RECURSE
  "CMakeFiles/stratlearn_andor.dir/and_or_graph.cc.o"
  "CMakeFiles/stratlearn_andor.dir/and_or_graph.cc.o.d"
  "CMakeFiles/stratlearn_andor.dir/and_or_pao.cc.o"
  "CMakeFiles/stratlearn_andor.dir/and_or_pao.cc.o.d"
  "CMakeFiles/stratlearn_andor.dir/and_or_pib.cc.o"
  "CMakeFiles/stratlearn_andor.dir/and_or_pib.cc.o.d"
  "CMakeFiles/stratlearn_andor.dir/and_or_serialization.cc.o"
  "CMakeFiles/stratlearn_andor.dir/and_or_serialization.cc.o.d"
  "CMakeFiles/stratlearn_andor.dir/and_or_strategy.cc.o"
  "CMakeFiles/stratlearn_andor.dir/and_or_strategy.cc.o.d"
  "CMakeFiles/stratlearn_andor.dir/and_or_upsilon.cc.o"
  "CMakeFiles/stratlearn_andor.dir/and_or_upsilon.cc.o.d"
  "libstratlearn_andor.a"
  "libstratlearn_andor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stratlearn_andor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
