file(REMOVE_RECURSE
  "libstratlearn_andor.a"
)
