file(REMOVE_RECURSE
  "libstratlearn_apps.a"
)
