file(REMOVE_RECURSE
  "CMakeFiles/stratlearn_apps.dir/kanswers.cc.o"
  "CMakeFiles/stratlearn_apps.dir/kanswers.cc.o.d"
  "CMakeFiles/stratlearn_apps.dir/segscan.cc.o"
  "CMakeFiles/stratlearn_apps.dir/segscan.cc.o.d"
  "libstratlearn_apps.a"
  "libstratlearn_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stratlearn_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
