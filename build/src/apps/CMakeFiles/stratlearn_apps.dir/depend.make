# Empty dependencies file for stratlearn_apps.
# This may be replaced when dependencies are built.
