file(REMOVE_RECURSE
  "libstratlearn_util.a"
)
