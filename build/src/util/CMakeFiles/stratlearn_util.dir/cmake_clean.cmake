file(REMOVE_RECURSE
  "CMakeFiles/stratlearn_util.dir/math_util.cc.o"
  "CMakeFiles/stratlearn_util.dir/math_util.cc.o.d"
  "CMakeFiles/stratlearn_util.dir/rng.cc.o"
  "CMakeFiles/stratlearn_util.dir/rng.cc.o.d"
  "CMakeFiles/stratlearn_util.dir/status.cc.o"
  "CMakeFiles/stratlearn_util.dir/status.cc.o.d"
  "CMakeFiles/stratlearn_util.dir/string_util.cc.o"
  "CMakeFiles/stratlearn_util.dir/string_util.cc.o.d"
  "libstratlearn_util.a"
  "libstratlearn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stratlearn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
