# Empty compiler generated dependencies file for stratlearn_util.
# This may be replaced when dependencies are built.
