file(REMOVE_RECURSE
  "CMakeFiles/stratlearn_graph.dir/builder.cc.o"
  "CMakeFiles/stratlearn_graph.dir/builder.cc.o.d"
  "CMakeFiles/stratlearn_graph.dir/examples.cc.o"
  "CMakeFiles/stratlearn_graph.dir/examples.cc.o.d"
  "CMakeFiles/stratlearn_graph.dir/inference_graph.cc.o"
  "CMakeFiles/stratlearn_graph.dir/inference_graph.cc.o.d"
  "CMakeFiles/stratlearn_graph.dir/serialization.cc.o"
  "CMakeFiles/stratlearn_graph.dir/serialization.cc.o.d"
  "libstratlearn_graph.a"
  "libstratlearn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stratlearn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
