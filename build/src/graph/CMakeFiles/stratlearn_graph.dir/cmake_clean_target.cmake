file(REMOVE_RECURSE
  "libstratlearn_graph.a"
)
