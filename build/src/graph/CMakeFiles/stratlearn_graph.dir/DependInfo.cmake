
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cc" "src/graph/CMakeFiles/stratlearn_graph.dir/builder.cc.o" "gcc" "src/graph/CMakeFiles/stratlearn_graph.dir/builder.cc.o.d"
  "/root/repo/src/graph/examples.cc" "src/graph/CMakeFiles/stratlearn_graph.dir/examples.cc.o" "gcc" "src/graph/CMakeFiles/stratlearn_graph.dir/examples.cc.o.d"
  "/root/repo/src/graph/inference_graph.cc" "src/graph/CMakeFiles/stratlearn_graph.dir/inference_graph.cc.o" "gcc" "src/graph/CMakeFiles/stratlearn_graph.dir/inference_graph.cc.o.d"
  "/root/repo/src/graph/serialization.cc" "src/graph/CMakeFiles/stratlearn_graph.dir/serialization.cc.o" "gcc" "src/graph/CMakeFiles/stratlearn_graph.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalog/CMakeFiles/stratlearn_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stratlearn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
