# Empty compiler generated dependencies file for stratlearn_graph.
# This may be replaced when dependencies are built.
