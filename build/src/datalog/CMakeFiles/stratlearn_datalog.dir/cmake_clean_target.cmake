file(REMOVE_RECURSE
  "libstratlearn_datalog.a"
)
