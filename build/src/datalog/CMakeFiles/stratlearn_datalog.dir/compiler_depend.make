# Empty compiler generated dependencies file for stratlearn_datalog.
# This may be replaced when dependencies are built.
