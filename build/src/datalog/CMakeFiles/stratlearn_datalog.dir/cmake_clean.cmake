file(REMOVE_RECURSE
  "CMakeFiles/stratlearn_datalog.dir/atom.cc.o"
  "CMakeFiles/stratlearn_datalog.dir/atom.cc.o.d"
  "CMakeFiles/stratlearn_datalog.dir/clause.cc.o"
  "CMakeFiles/stratlearn_datalog.dir/clause.cc.o.d"
  "CMakeFiles/stratlearn_datalog.dir/database.cc.o"
  "CMakeFiles/stratlearn_datalog.dir/database.cc.o.d"
  "CMakeFiles/stratlearn_datalog.dir/evaluator.cc.o"
  "CMakeFiles/stratlearn_datalog.dir/evaluator.cc.o.d"
  "CMakeFiles/stratlearn_datalog.dir/parser.cc.o"
  "CMakeFiles/stratlearn_datalog.dir/parser.cc.o.d"
  "CMakeFiles/stratlearn_datalog.dir/rule_base.cc.o"
  "CMakeFiles/stratlearn_datalog.dir/rule_base.cc.o.d"
  "CMakeFiles/stratlearn_datalog.dir/symbol_table.cc.o"
  "CMakeFiles/stratlearn_datalog.dir/symbol_table.cc.o.d"
  "CMakeFiles/stratlearn_datalog.dir/unify.cc.o"
  "CMakeFiles/stratlearn_datalog.dir/unify.cc.o.d"
  "libstratlearn_datalog.a"
  "libstratlearn_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stratlearn_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
