
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/atom.cc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/atom.cc.o" "gcc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/atom.cc.o.d"
  "/root/repo/src/datalog/clause.cc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/clause.cc.o" "gcc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/clause.cc.o.d"
  "/root/repo/src/datalog/database.cc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/database.cc.o" "gcc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/database.cc.o.d"
  "/root/repo/src/datalog/evaluator.cc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/evaluator.cc.o" "gcc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/evaluator.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/parser.cc.o" "gcc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/parser.cc.o.d"
  "/root/repo/src/datalog/rule_base.cc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/rule_base.cc.o" "gcc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/rule_base.cc.o.d"
  "/root/repo/src/datalog/symbol_table.cc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/symbol_table.cc.o" "gcc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/symbol_table.cc.o.d"
  "/root/repo/src/datalog/unify.cc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/unify.cc.o" "gcc" "src/datalog/CMakeFiles/stratlearn_datalog.dir/unify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/stratlearn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
