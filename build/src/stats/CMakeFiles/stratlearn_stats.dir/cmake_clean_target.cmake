file(REMOVE_RECURSE
  "libstratlearn_stats.a"
)
