# Empty dependencies file for stratlearn_stats.
# This may be replaced when dependencies are built.
