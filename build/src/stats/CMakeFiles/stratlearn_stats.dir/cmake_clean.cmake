file(REMOVE_RECURSE
  "CMakeFiles/stratlearn_stats.dir/chernoff.cc.o"
  "CMakeFiles/stratlearn_stats.dir/chernoff.cc.o.d"
  "CMakeFiles/stratlearn_stats.dir/running_stats.cc.o"
  "CMakeFiles/stratlearn_stats.dir/running_stats.cc.o.d"
  "CMakeFiles/stratlearn_stats.dir/sequential.cc.o"
  "CMakeFiles/stratlearn_stats.dir/sequential.cc.o.d"
  "libstratlearn_stats.a"
  "libstratlearn_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stratlearn_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
