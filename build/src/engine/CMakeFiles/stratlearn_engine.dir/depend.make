# Empty dependencies file for stratlearn_engine.
# This may be replaced when dependencies are built.
