file(REMOVE_RECURSE
  "libstratlearn_engine.a"
)
