file(REMOVE_RECURSE
  "CMakeFiles/stratlearn_engine.dir/adaptive_qp.cc.o"
  "CMakeFiles/stratlearn_engine.dir/adaptive_qp.cc.o.d"
  "CMakeFiles/stratlearn_engine.dir/query_processor.cc.o"
  "CMakeFiles/stratlearn_engine.dir/query_processor.cc.o.d"
  "CMakeFiles/stratlearn_engine.dir/strategy.cc.o"
  "CMakeFiles/stratlearn_engine.dir/strategy.cc.o.d"
  "libstratlearn_engine.a"
  "libstratlearn_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stratlearn_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
