
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/adaptive_qp.cc" "src/engine/CMakeFiles/stratlearn_engine.dir/adaptive_qp.cc.o" "gcc" "src/engine/CMakeFiles/stratlearn_engine.dir/adaptive_qp.cc.o.d"
  "/root/repo/src/engine/query_processor.cc" "src/engine/CMakeFiles/stratlearn_engine.dir/query_processor.cc.o" "gcc" "src/engine/CMakeFiles/stratlearn_engine.dir/query_processor.cc.o.d"
  "/root/repo/src/engine/strategy.cc" "src/engine/CMakeFiles/stratlearn_engine.dir/strategy.cc.o" "gcc" "src/engine/CMakeFiles/stratlearn_engine.dir/strategy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/stratlearn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stratlearn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stratlearn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/stratlearn_datalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
