# Empty compiler generated dependencies file for stratlearn_core.
# This may be replaced when dependencies are built.
