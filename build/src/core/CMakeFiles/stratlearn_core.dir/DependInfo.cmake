
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/delta_estimator.cc" "src/core/CMakeFiles/stratlearn_core.dir/delta_estimator.cc.o" "gcc" "src/core/CMakeFiles/stratlearn_core.dir/delta_estimator.cc.o.d"
  "/root/repo/src/core/expected_cost.cc" "src/core/CMakeFiles/stratlearn_core.dir/expected_cost.cc.o" "gcc" "src/core/CMakeFiles/stratlearn_core.dir/expected_cost.cc.o.d"
  "/root/repo/src/core/palo.cc" "src/core/CMakeFiles/stratlearn_core.dir/palo.cc.o" "gcc" "src/core/CMakeFiles/stratlearn_core.dir/palo.cc.o.d"
  "/root/repo/src/core/pao.cc" "src/core/CMakeFiles/stratlearn_core.dir/pao.cc.o" "gcc" "src/core/CMakeFiles/stratlearn_core.dir/pao.cc.o.d"
  "/root/repo/src/core/pib.cc" "src/core/CMakeFiles/stratlearn_core.dir/pib.cc.o" "gcc" "src/core/CMakeFiles/stratlearn_core.dir/pib.cc.o.d"
  "/root/repo/src/core/pib1.cc" "src/core/CMakeFiles/stratlearn_core.dir/pib1.cc.o" "gcc" "src/core/CMakeFiles/stratlearn_core.dir/pib1.cc.o.d"
  "/root/repo/src/core/smith.cc" "src/core/CMakeFiles/stratlearn_core.dir/smith.cc.o" "gcc" "src/core/CMakeFiles/stratlearn_core.dir/smith.cc.o.d"
  "/root/repo/src/core/transformations.cc" "src/core/CMakeFiles/stratlearn_core.dir/transformations.cc.o" "gcc" "src/core/CMakeFiles/stratlearn_core.dir/transformations.cc.o.d"
  "/root/repo/src/core/upsilon.cc" "src/core/CMakeFiles/stratlearn_core.dir/upsilon.cc.o" "gcc" "src/core/CMakeFiles/stratlearn_core.dir/upsilon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/stratlearn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/stratlearn_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/stratlearn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/stratlearn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stratlearn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/stratlearn_datalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
