file(REMOVE_RECURSE
  "libstratlearn_core.a"
)
