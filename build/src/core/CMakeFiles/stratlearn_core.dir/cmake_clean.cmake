file(REMOVE_RECURSE
  "CMakeFiles/stratlearn_core.dir/delta_estimator.cc.o"
  "CMakeFiles/stratlearn_core.dir/delta_estimator.cc.o.d"
  "CMakeFiles/stratlearn_core.dir/expected_cost.cc.o"
  "CMakeFiles/stratlearn_core.dir/expected_cost.cc.o.d"
  "CMakeFiles/stratlearn_core.dir/palo.cc.o"
  "CMakeFiles/stratlearn_core.dir/palo.cc.o.d"
  "CMakeFiles/stratlearn_core.dir/pao.cc.o"
  "CMakeFiles/stratlearn_core.dir/pao.cc.o.d"
  "CMakeFiles/stratlearn_core.dir/pib.cc.o"
  "CMakeFiles/stratlearn_core.dir/pib.cc.o.d"
  "CMakeFiles/stratlearn_core.dir/pib1.cc.o"
  "CMakeFiles/stratlearn_core.dir/pib1.cc.o.d"
  "CMakeFiles/stratlearn_core.dir/smith.cc.o"
  "CMakeFiles/stratlearn_core.dir/smith.cc.o.d"
  "CMakeFiles/stratlearn_core.dir/transformations.cc.o"
  "CMakeFiles/stratlearn_core.dir/transformations.cc.o.d"
  "CMakeFiles/stratlearn_core.dir/upsilon.cc.o"
  "CMakeFiles/stratlearn_core.dir/upsilon.cc.o.d"
  "libstratlearn_core.a"
  "libstratlearn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stratlearn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
