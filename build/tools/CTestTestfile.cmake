# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_query "/root/repo/build/tools/stratlearn_cli" "query" "/root/repo/tests/testdata/university.dl" "instructor(manolis)")
set_tests_properties(cli_query PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dot "/root/repo/build/tools/stratlearn_cli" "dot" "/root/repo/tests/testdata/university.dl" "instructor(b)")
set_tests_properties(cli_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_learn_pib "/root/repo/build/tools/stratlearn_cli" "learn-pib" "/root/repo/tests/testdata/university.dl" "instructor(b)" "/root/repo/tests/testdata/university_workload.txt" "--queries=300" "--seed=7")
set_tests_properties(cli_learn_pib PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_learn_pao "/root/repo/build/tools/stratlearn_cli" "learn-pao" "/root/repo/tests/testdata/university.dl" "instructor(b)" "/root/repo/tests/testdata/university_workload.txt" "--epsilon=0.5" "--delta=0.2" "--seed=7")
set_tests_properties(cli_learn_pao PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_eval "/root/repo/build/tools/stratlearn_cli" "eval" "/root/repo/tests/testdata/university.dl" "instructor(b)" "/root/repo/tests/testdata/university_workload.txt")
set_tests_properties(cli_eval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
