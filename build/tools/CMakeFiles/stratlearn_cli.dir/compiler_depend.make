# Empty compiler generated dependencies file for stratlearn_cli.
# This may be replaced when dependencies are built.
