file(REMOVE_RECURSE
  "CMakeFiles/stratlearn_cli.dir/stratlearn_cli.cc.o"
  "CMakeFiles/stratlearn_cli.dir/stratlearn_cli.cc.o.d"
  "stratlearn_cli"
  "stratlearn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stratlearn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
